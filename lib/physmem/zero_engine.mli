(** Frame zeroing service.

    Reusing memory requires erasing it for security (§4.1 of the paper).
    Three strategies are modelled:

    - {b eager}: zero the frame at reuse time — linear in size, the
      baseline behaviour;
    - {b background}: keep a pool of pre-zeroed frames filled during idle
      time, so allocation-time handout is O(1);
    - {b bulk erase}: a constant-time device-level erase of a whole
      contiguous extent (the "new technique" the paper calls for). *)

type t

val create : Phys_mem.t -> t

val put_dirty : t -> Frame.t list -> unit
(** Hand freed frames to the engine; they become pending until zeroed. *)

val take_zeroed : t -> Frame.t option
(** Pop a pre-zeroed frame in O(1); [None] when the pool is empty. *)

val background_step : t -> budget_frames:int -> int
(** Zero up to [budget_frames] pending frames (charging the full linear
    zeroing cost to the clock, as the work is real — just off the critical
    path). Returns the number of frames zeroed. *)

val eager_zero : t -> Frame.t -> unit
(** Zero one frame right now, charging linear cost. *)

val bulk_erase : t -> first:Frame.t -> count:int -> unit
(** Device-level erase of [count] contiguous frames at constant simulated
    cost (one command latency), regardless of [count]. Contents are
    cleared. Bumps "bulk_erase_cmds". *)

val pending : t -> int
(** Frames waiting to be zeroed. *)

val available : t -> int
(** Pre-zeroed frames ready for O(1) handout. *)
