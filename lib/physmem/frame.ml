type t = int

let to_addr n = n lsl Sim.Units.page_shift
let of_addr a = a lsr Sim.Units.page_shift
let offset_in_frame a = a land (Sim.Units.page_size - 1)
let pp ppf n = Format.fprintf ppf "pfn:%#x" n
