(** Physical frame numbers.

    A frame is one base page (4 KiB) of physical memory, identified by its
    index in the physical address space. *)

type t = int
(** Frame number; frame [n] covers physical bytes
    [n * page_size .. (n+1) * page_size - 1]. *)

val to_addr : t -> int
(** Physical byte address of the first byte of the frame. *)

val of_addr : int -> t
(** Frame containing the given physical byte address. *)

val offset_in_frame : int -> int
(** Byte offset of a physical address within its frame. *)

val pp : Format.formatter -> t -> unit
