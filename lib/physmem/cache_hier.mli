(** A write-back, write-allocate cache hierarchy (L1/L2/LLC, LRU,
    64-byte lines).

    The paper notes that even with ample memory, "caches, because of
    their proximity to the processor core, will remain a precious
    resource"; the PMFS course report the camera-ready interleaves
    compares LLC misses between the malloc and PMFS allocation paths.
    Attach a hierarchy to {!Phys_mem} ({!Phys_mem.attach_cache}) and
    demand accesses are charged by the level that hits instead of flat
    memory latency. *)

type level_cfg = { name : string; size_bytes : int; ways : int; latency : int }
(** [latency] is the cycles charged when this level hits. *)

val default_l1 : level_cfg
(** 32 KiB, 8-way, 4 cycles. *)

val default_l2 : level_cfg
(** 256 KiB, 8-way, 14 cycles. *)

val default_llc : level_cfg
(** 8 MiB, 16-way, 42 cycles. *)

type t

val create :
  clock:Sim.Clock.t -> stats:Sim.Stats.t -> ?levels:level_cfg list -> unit -> t
(** Levels ordered nearest first; defaults to L1/L2/LLC above. *)

type outcome = Hit of int | Miss
(** [Hit i]: level index [i] (0 = nearest) supplied the line. *)

val access : t -> addr:int -> write:bool -> outcome
(** Look up the line containing [addr]. Charges the hit level's latency
    (or all levels' lookup latencies on a full miss — the caller then
    charges memory). The line is filled into every level; a dirty LRU
    victim bumps the "cache_writeback" counter (the caller of a full
    miss decides what a write-back costs). Bumps
    "l1_hit"/"l2_hit"/"llc_hit"/"llc_miss" style counters named after
    each level. *)

val flush : t -> unit
(** Drop all lines (no write-back modelling on explicit flush). *)

val line_count : t -> int
(** Lines currently resident across all levels (diagnostics). *)
