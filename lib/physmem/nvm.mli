(** Persistence primitives for the NVM region.

    Models the clwb/sfence discipline persistent-memory file systems such
    as PMFS use: stores to NVM only become durable once flushed and
    fenced. Tracks in-flight (unflushed) lines so crash tests can verify
    durability reasoning. *)

type t

val create : Phys_mem.t -> t

val write_persistent : t -> addr:int -> string -> unit
(** Store to NVM and remember the touched cache lines as unflushed. *)

val flush : t -> addr:int -> len:int -> unit
(** Flush the covered cache lines (clwb): charges one NVM write per line
    and marks them durable. Consults the fault plane attached to the
    memory's trace: ["nvm_torn_line"] leaves the first dirty line
    unflushed, ["nvm_bit_flip"] corrupts one bit of a flushed line, and
    ["durable_step"] raises {!Sim.Fault_inject.Injected_crash} after the
    batch (one durable-step boundary per flush call). *)

val fence : t -> unit
(** Store fence (sfence): charges a small fixed cost; after a fence,
    previously flushed lines are guaranteed durable. Each fence is a
    ["durable_step"] boundary for the crash explorer. *)

val unflushed_lines : t -> int
(** Lines written through {!write_persistent} but not yet flushed. *)

val crash : t -> unit
(** Power failure. DRAM vanishes (delegates to {!Phys_mem.crash}); NVM
    lines that were written but never flushed are torn: their contents are
    dropped, modelling the loss of data stuck in the cache hierarchy. *)

val mem : t -> Phys_mem.t
(** The physical memory this persistence domain wraps. *)
