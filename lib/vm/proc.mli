(** A simulated process: a pid bound to an address space. *)

type t = { pid : int; aspace : Address_space.t; mutable alive : bool }

val create : pid:int -> aspace:Address_space.t -> t
val pp : Format.formatter -> t -> unit
