(** A simulated process: a pid bound to an address space, scheduled on a
    core. *)

type t = {
  pid : int;
  aspace : Address_space.t;
  mutable alive : bool;
  mutable core : int;  (** Core the process currently runs on. *)
  mutable affinity : int;
      (** Bitmask of cores the scheduler may place it on; -1 = any. *)
}

val create : pid:int -> aspace:Address_space.t -> ?core:int -> ?affinity:int -> unit -> t
val pp : Format.formatter -> t -> unit
