type t = { pid : int; aspace : Address_space.t; mutable alive : bool }

let create ~pid ~aspace = { pid; aspace; alive = true }

let pp ppf t =
  Format.fprintf ppf "pid %d (%s, %d vmas)" t.pid
    (if t.alive then "alive" else "dead")
    (Address_space.vma_count t.aspace)
