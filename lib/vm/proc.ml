type t = {
  pid : int;
  aspace : Address_space.t;
  mutable alive : bool;
  mutable core : int;
  mutable affinity : int;
}

let create ~pid ~aspace ?(core = 0) ?(affinity = -1) () =
  { pid; aspace; alive = true; core; affinity }

let pp ppf t =
  Format.fprintf ppf "pid %d (%s, %d vmas, core %d)" t.pid
    (if t.alive then "alive" else "dead")
    (Address_space.vma_count t.aspace)
    t.core
