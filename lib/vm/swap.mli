(** Swap backing store: the place the baseline VM pushes cold dirty
    pages. Two flavours:

    - [Device]: an NVMe-class block device (~10 us per 4 KiB op);
    - [Swapfile]: a file in the persistent-memory FS — on an
      NVM machine even the baseline's swap traffic lands in memory,
      which is the paper's point that the whole mechanism is vestigial.

    The paper's position is that ample persistent memory removes the
    need for any of this; it exists here to price the baseline. *)

type backing = Device | Swapfile of Fs.Memfs.t

type t

val create : mem:Physmem.Phys_mem.t -> ?backing:backing -> unit -> t
(** [backing] defaults to [Device]. With [Swapfile fs] a "/swapfile" is
    created in [fs] and extended on demand. *)

val swap_out : t -> key:int * int -> pfn:Physmem.Frame.t -> unit
(** Copy the frame out to the backing store (charging the transfer) and
    zero it. [key] identifies the page, conventionally (pid, va). *)

val swap_in : t -> key:int * int -> pfn:Physmem.Frame.t -> bool
(** Restore a page into [pfn]. [false] if the key was never swapped
    out. *)

val contains : t -> key:int * int -> bool
val slots_used : t -> int
