(** Cross-layer invariant checker.

    Verifies, after any scenario, that independently maintained views of
    the machine still agree:

    - {b vma_pt_prot} — no page-table leaf grants an access its covering
      VMA forbids (write-protected CoW leaves below a writable VMA are
      fine; the reverse is not).
    - {b mapcount / refcount} — per frame, the number of page-table
      references reachable through VMAs and userfault registrations
      equals [Page_meta.mapcount], and no mapcount exceeds its refcount.
      FOM mappings (grafts, range translations) are file-owned and
      deliberately outside struct-page accounting, so they are excluded.
    - {b tlb_coherence} — on every core, every valid TLB entry still
      belongs to a live address space (ASID = pid) and matches its page
      table (existence, frame, page size, protection): a lost shootdown
      ack surfaces here, on whichever core kept the stale entry.
    - {b tlb_accounting} — the per-core [Hw.Tlb] shootdown and flush
      counters sum exactly to the machine-wide "tlb_shootdown" /
      "tlb_flush" stats, whichever invalidation branch did the bumping.
    - {b fs_accounting} — per file system, quota charge == extent-tree
      pages == space-bitmap usage.

    The checker is pure host-side introspection: it charges no cycles
    and moves no counters, so running it never perturbs an experiment. *)

type violation = { check : string; detail : string }

val run : Kernel.t -> violation list
(** Empty list = all invariants hold. Violations are ordered by check. *)

val register_rule : name:string -> (Kernel.t -> violation list) -> unit
(** Add an extension rule that {!run} evaluates after the built-in
    checks (rules run in name order; registering an existing name
    replaces it). The registry is global: a rule must return [[]] for
    kernels it does not know — filter by physical equality against the
    kernel the rule was built for. *)

val unregister_rule : name:string -> unit

val violation_to_string : violation -> string
val pp : Format.formatter -> violation list -> unit
