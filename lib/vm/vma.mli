(** Virtual memory areas: the kernel's per-region descriptors.

    A VMA describes a contiguous virtual range with one backing kind and
    one protection. Adjacent anonymous VMAs with equal attributes merge,
    as in Linux (an optimisation the paper notes is lost when every
    region is a separate file). *)

type backing =
  | Anon
  | File of { fs : Fs.Memfs.t; ino : int; file_offset : int }
      (** [file_offset]: offset in bytes of the mapping's start within
          the file. *)

type share = Private | Shared
(** [Private] file mappings copy-on-write; [Shared] write through. *)

type t = {
  mutable start : int;
  mutable len : int;
  mutable prot : Hw.Prot.t;
  backing : backing;
  share : share;
  mutable populated : bool;  (** Was the mapping pre-populated? *)
}

val make : start:int -> len:int -> prot:Hw.Prot.t -> backing:backing -> share:share -> t

val end_ : t -> int
(** One past the last byte. *)

val contains : t -> int -> bool

val can_merge : t -> t -> bool
(** [can_merge a b]: [b] starts exactly at [end_ a] with identical
    attributes and anonymous backing (file VMAs never merge here: their
    offsets would need to chain, which Linux checks but our experiments
    never exercise). *)

val file_page_of_va : t -> va:int -> int
(** For file-backed VMAs: logical file page backing [va]. *)

val pp : Format.formatter -> t -> unit
