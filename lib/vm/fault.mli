(** Page-fault handling for the baseline VM: the per-page work the paper
    wants to eliminate. Demand-paged anonymous and file mappings,
    copy-on-write for private file mappings, and swap-in. *)

exception Segfault of int
(** Raised for an access with no VMA or insufficient VMA protection;
    carries the faulting address. *)

type ctx = {
  mem : Physmem.Phys_mem.t;
  meta : Page_meta.t;
  buddy : Alloc.Buddy.t;  (** DRAM frame source for anonymous pages / CoW *)
  swap : Swap.t;
  zero : Physmem.Zero_engine.t;
  zcache : Alloc.Zero_cache.t;  (** pre-zeroed frames tried first on anon faults *)
  reclaim : Reclaim.t option;
      (** when present, a failed allocation gets one reclaim-then-retry
          pass before [Sim.Errno.Error (ENOMEM, _)] surfaces *)
}

type kind = Minor | Major
(** Major = the page had to come back from the swap device. *)

val handle : ctx -> aspace:Address_space.t -> pid:int -> va:int -> write:bool -> kind
(** Resolve one fault: find the VMA, then demand-allocate (anon),
    demand-map (file), copy-on-write, or swap in, updating the page table
    and per-page metadata exactly as the baseline must. Charges the trap
    cost plus all per-page work. Raises {!Segfault} when the access is
    invalid, and [Sim.Errno.Error (ENOMEM, _)] when no frame can be found
    even after the reclaim-retry pass. The ["frame_alloc_fail"] site
    injects buddy failures in front of every allocation here. *)

val fresh_zero_frame : ctx -> Physmem.Frame.t
(** A zeroed frame via zero-cache → engine pool → buddy+eager-zero →
    launder-on-demand, with the reclaim-retry pass on exhaustion. Raises
    [Sim.Errno.Error (ENOMEM, _)] if nothing can be found. *)

val raw_frame_exn : ?what:string -> ctx -> Physmem.Frame.t
(** A frame with unspecified contents (buddy, then launder-on-demand),
    with the reclaim-retry pass; [what] names the consumer in the ENOMEM
    error. *)

val populate_anon_page : ctx -> aspace:Address_space.t -> va:int -> prot:Hw.Prot.t -> unit
(** The MAP_POPULATE path for one anonymous page: allocate, zero, map —
    without the trap cost (no fault is taken). *)

val populate_file_page :
  ctx -> aspace:Address_space.t -> vma:Vma.t -> va:int -> unit
(** The MAP_POPULATE path for one file-backed page. *)
