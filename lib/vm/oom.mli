(** The out-of-memory killer: the baseline's last resort when the
    anonymous pool runs dry. Contrast with file-only memory, where
    pressure is relieved by deleting discardable files
    ({!O1mem.Discard}) instead of killing processes. *)

val pick_victim : Kernel.t -> ?except:int -> unit -> Proc.t option
(** The live process with the largest resident set (ties broken by pid),
    skipping pid [except]. *)

val on_pressure : Kernel.t -> ?except:int -> unit -> int option
(** Kill the victim (orderly teardown frees its pages) and return its
    pid, or [None] when no process can be killed. *)
