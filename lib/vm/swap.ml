(* NVMe-ish: ~10 us device latency per 4 KiB operation at 2 GHz. *)
let device_op_cycles = 20_000

type backing = Device | Swapfile of Fs.Memfs.t

type slot = Content of bytes | File_slot of int

type t = {
  mem : Physmem.Phys_mem.t;
  backing : backing;
  slots : (int * int, slot) Hashtbl.t;
  mutable swapfile_ino : int option;
  mutable next_file_slot : int;
  mutable free_file_slots : int list;
}

let create ~mem ?(backing = Device) () =
  {
    mem;
    backing;
    slots = Hashtbl.create 64;
    swapfile_ino = None;
    next_file_slot = 0;
    free_file_slots = [];
  }

let charge t c = Sim.Clock.charge (Physmem.Phys_mem.clock t.mem) c

let swapfile t fs =
  match t.swapfile_ino with
  | Some ino -> ino
  | None ->
    let ino =
      match Fs.Memfs.lookup fs "/swapfile" with
      | Some ino -> ino
      | None -> Fs.Memfs.create_file fs "/swapfile" ~persistence:Fs.Inode.Volatile
    in
    t.swapfile_ino <- Some ino;
    ino

let take_file_slot t fs =
  match t.free_file_slots with
  | s :: rest ->
    t.free_file_slots <- rest;
    s
  | [] ->
    let s = t.next_file_slot in
    t.next_file_slot <- s + 1;
    (* Grow the swapfile to cover the new slot. *)
    Fs.Memfs.extend fs (swapfile t fs) ~bytes_wanted:Sim.Units.page_size;
    s

let swap_out t ~key ~pfn =
  let addr = Physmem.Frame.to_addr pfn in
  let content = Physmem.Phys_mem.read t.mem ~addr ~len:Sim.Units.page_size in
  (match t.backing with
  | Device ->
    charge t device_op_cycles;
    Hashtbl.replace t.slots key (Content content)
  | Swapfile fs ->
    let s = take_file_slot t fs in
    Fs.Memfs.write_file fs (swapfile t fs) ~off:(s * Sim.Units.page_size)
      (Bytes.to_string content);
    Hashtbl.replace t.slots key (File_slot s));
  Physmem.Phys_mem.zero_frame t.mem pfn;
  Sim.Stats.incr (Physmem.Phys_mem.stats t.mem) "swap_out"

let swap_in t ~key ~pfn =
  match Hashtbl.find_opt t.slots key with
  | None -> false
  | Some slot ->
    Hashtbl.remove t.slots key;
    (match slot with
    | Content content ->
      charge t device_op_cycles;
      Physmem.Phys_mem.write t.mem ~addr:(Physmem.Frame.to_addr pfn) (Bytes.to_string content)
    | File_slot s ->
      let fs = match t.backing with Swapfile fs -> fs | Device -> assert false in
      let content =
        Fs.Memfs.read_file fs (swapfile t fs) ~off:(s * Sim.Units.page_size)
          ~len:Sim.Units.page_size
      in
      t.free_file_slots <- s :: t.free_file_slots;
      Physmem.Phys_mem.write t.mem ~addr:(Physmem.Frame.to_addr pfn) (Bytes.to_string content));
    Sim.Stats.incr (Physmem.Phys_mem.stats t.mem) "swap_in";
    true

let contains t ~key = Hashtbl.mem t.slots key
let slots_used t = Hashtbl.length t.slots
