(** Round-robin-with-affinity core placement.

    The simulator runs on one virtual timeline, so the scheduler decides
    {e where} work happens — which core's TLBs a process warms and where
    its cycles are attributed — rather than preempting anything. *)

type t

val create : cores:int -> t
val cores : t -> int

val pick : t -> affinity:int -> int
(** Next core in round-robin rotation whose bit is set in [affinity]
    (-1 = any core). Advances the rotation. Raises [Invalid_argument] if
    the mask excludes every core. *)
