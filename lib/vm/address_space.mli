(** A process address space: VMA set + page table + MMU context. *)

type t

val create :
  clock:Sim.Clock.t -> stats:Sim.Stats.t -> ?trace:Sim.Trace.t -> levels:int ->
  alloc_pt_frame:(unit -> Physmem.Frame.t) -> ?range_table:Hw.Range_table.t ->
  ?mode:Hw.Walker.mode -> ?tlb_sets:int -> ?tlb_ways:int -> ?range_tlb_entries:int ->
  ?smp:Hw.Smp.t -> ?asid:int -> ?mmap_base:int -> unit -> t
(** [mmap_base] overrides the default bump-allocation base (used for
    address-space layout randomization). [smp]/[asid] place the address
    space on a shared machine with a unique ASID (the kernel passes
    [asid] = pid); omitted, the MMU gets a private single-core machine. *)

val page_table : t -> Hw.Page_table.t
val mmu : t -> Hw.Mmu.t
val range_table : t -> Hw.Range_table.t option

val alloc_va : t -> len:int -> align:int -> int
(** Reserve a fresh virtual range in the mmap area (bump allocation,
    charged as part of VMA setup by callers). *)

val insert_vma : t -> Vma.t -> unit
(** Add a VMA, merging with neighbours when {!Vma.can_merge} allows; one
    VMA-setup charge. Raises [Invalid_argument] on overlap. *)

val remove_range : t -> start:int -> len:int -> Vma.t list
(** Remove all VMAs fully inside the range (partial overlaps split);
    returns the removed pieces. *)

val find_vma : t -> va:int -> Vma.t option
val vma_count : t -> int
val iter_vmas : t -> (Vma.t -> unit) -> unit

val mmap_cursor : t -> int
(** Current bump-allocation cursor for {!alloc_va}. *)

val set_mmap_cursor : t -> int -> unit
(** Used by fork to give the child the parent's layout. *)
