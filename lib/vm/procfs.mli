(** /proc-style introspection: the observability a downstream user needs
    to see where memory went — including proportional accounting (PSS)
    that makes page-table/frame sharing visible. *)

val maps : Proc.t -> string
(** One line per VMA, /proc/pid/maps style:
    [start-end perms backing]. *)

val rss_pages : Proc.t -> int
(** Resident pages: base-page count covered by present leaves (a 2 MiB
    leaf counts as 512). *)

val pss_pages : Kernel.t -> Proc.t -> float
(** Proportional set size: each resident page divided by its frame's
    mapcount — shared file pages and CoW-shared pages are split between
    their owners. *)

val pt_bytes : Proc.t -> int
(** Physical memory spent on this process's own page-table nodes
    (grafted foreign subtrees are not counted — they are shared). *)

val smaps_summary : Kernel.t -> Proc.t -> string
(** Human-readable rollup: VMAs, RSS, PSS, page-table bytes. *)
