let page = Sim.Units.page_size

let clone_vma (v : Vma.t) =
  let copy = Vma.make ~start:v.Vma.start ~len:v.Vma.len ~prot:v.Vma.prot ~backing:v.Vma.backing ~share:v.Vma.share in
  copy.Vma.populated <- v.Vma.populated;
  copy

let fork k (parent : Proc.t) =
  let child = Kernel.create_process k () in
  let p_as = parent.Proc.aspace and c_as = child.Proc.aspace in
  let p_table = Address_space.page_table p_as in
  let c_table = Address_space.page_table c_as in
  let meta = Kernel.page_meta k in
  let clock = Kernel.clock k in
  let model = Sim.Clock.model clock in
  Sim.Clock.charge clock model.Sim.Cost_model.syscall;
  Address_space.set_mmap_cursor c_as (Address_space.mmap_cursor p_as);
  let vmas = ref [] in
  Address_space.iter_vmas p_as (fun v -> vmas := v :: !vmas);
  List.iter
    (fun (v : Vma.t) ->
      Address_space.insert_vma c_as (clone_vma v);
      (match v.Vma.backing with
      | Vma.File { fs; ino; _ } -> Fs.Memfs.open_file fs ino
      | Vma.Anon -> ());
      let pages = v.Vma.len / page in
      for i = 0 to pages - 1 do
        let va = v.Vma.start + (i * page) in
        (* Swapped-out private pages come back before sharing (we do not
           model shared swap slots). *)
        if
          v.Vma.backing = Vma.Anon
          && Hw.Page_table.lookup p_table ~va = None
          && Swap.contains (Kernel.swap k) ~key:(parent.Proc.pid, va)
        then Kernel.access k parent ~va ~write:false;
        (* Huge anonymous leaves split first, as in Linux. *)
        (match Hw.Page_table.lookup p_table ~va with
        | Some (_, leaf)
          when leaf.Hw.Page_table.size <> Hw.Page_size.Small && v.Vma.backing = Vma.Anon ->
          ignore (Thp.split_huge k parent ~va)
        | _ -> ());
        match Hw.Page_table.lookup p_table ~va with
        | None -> ()
        | Some (_, leaf) -> (
          let pfn = leaf.Hw.Page_table.pfn in
          match (v.Vma.backing, v.Vma.share) with
          | _, Vma.Shared ->
            (* Shared mapping: alias the frame at full protection. *)
            Hw.Page_table.map_page c_table ~va ~pfn ~prot:leaf.Hw.Page_table.prot
              ~size:Hw.Page_size.Small;
            Page_meta.get_page meta pfn;
            Page_meta.inc_mapcount meta pfn
          | _, Vma.Private ->
            (* Private: write-protect both sides; first write CoWs. *)
            let ro = { leaf.Hw.Page_table.prot with Hw.Prot.write = false } in
            if leaf.Hw.Page_table.prot.Hw.Prot.write then begin
              leaf.Hw.Page_table.prot <- ro;
              Sim.Clock.charge clock model.Sim.Cost_model.pte_write;
              Hw.Mmu.invalidate_page (Address_space.mmu p_as) ~va
            end;
            Hw.Page_table.map_page c_table ~va ~pfn ~prot:ro ~size:Hw.Page_size.Small;
            Page_meta.get_page meta pfn;
            Page_meta.inc_mapcount meta pfn;
            if v.Vma.backing = Vma.Anon then
              Reclaim.register (Kernel.reclaim k) ~pid:child.Proc.pid ~aspace:c_as ~va ~pfn)
      done)
    (List.rev !vmas);
  Sim.Stats.incr (Kernel.stats k) "fork";
  child

let cow_shared_pages _k (proc : Proc.t) =
  let aspace = proc.Proc.aspace in
  let table = Address_space.page_table aspace in
  let n = ref 0 in
  Hw.Page_table.iter_leaves table (fun va leaf ->
      if not leaf.Hw.Page_table.prot.Hw.Prot.write then
        match Address_space.find_vma aspace ~va with
        | Some { Vma.prot = { Hw.Prot.write = true; _ }; share = Vma.Private; _ } -> incr n
        | _ -> ());
  !n
