(** Per-page kernel metadata — the simulator's [struct page].

    The paper counts 25 flags and 38 fields in Linux's page structure and
    argues most of it is unnecessary with ample persistent memory. We
    model the flags the baseline VM actually exercises plus the full
    space cost (64 bytes per 4 KiB page). Records are created lazily
    host-side, but the boot-time initialisation cost and the steady-state
    space cost are computed over all frames, as on a real machine. *)

type flag =
  | Locked
  | Referenced
  | Uptodate
  | Dirty
  | Lru
  | Active
  | Slab_page
  | Reserved
  | Private
  | Writeback
  | Head
  | Swapcache
  | Swapbacked
  | Mappedtodisk
  | Reclaim
  | Unevictable
  | Mlocked
  | Pinned

type t

val create : clock:Sim.Clock.t -> stats:Sim.Stats.t -> frames:int -> t

val frames : t -> int

val get_flag : t -> Physmem.Frame.t -> flag -> bool
val set_flag : t -> Physmem.Frame.t -> flag -> bool -> unit
(** Each flag update charges a small metadata-write cost. *)

val refcount : t -> Physmem.Frame.t -> int
val get_page : t -> Physmem.Frame.t -> unit
(** Increment the frame's reference count (Linux [get_page]). *)

val put_page : t -> Physmem.Frame.t -> unit
(** Decrement; raises [Invalid_argument] below zero. *)

val mapcount : t -> Physmem.Frame.t -> int
val inc_mapcount : t -> Physmem.Frame.t -> unit
val dec_mapcount : t -> Physmem.Frame.t -> unit

val init_range : t -> first:Physmem.Frame.t -> count:int -> unit
(** Model boot-time initialisation of a frame range: charges
    [struct_page_init] per frame — one of the paper's linear costs. *)

val reset_after_crash : t -> unit
(** Drop every per-frame record and zero the "resident_pages" gauge:
    struct pages are DRAM state and do not survive a power failure. *)

val iter_counts : t -> (Physmem.Frame.t -> refcount:int -> mapcount:int -> unit) -> unit
(** Visit every frame that ever had metadata materialized. Host-side
    introspection for the invariant checker: no charge. *)

val resident_pages : t -> int
(** Frames with [mapcount > 0] — the true level of the "resident_pages"
    gauge, used to re-baseline it after a crash. *)

val bytes_per_page : int
(** 64, as in Linux. *)

val metadata_bytes : t -> int
(** [frames * bytes_per_page]: what the kernel pays for the whole
    machine, touched or not. *)
