(** fork(): duplicate a process with copy-on-write memory.

    Part of the baseline's page-granular machinery: every resident
    private page must be visited to write-protect the parent's PTE and
    install a mirrored one in the child — per-page work the paper wants
    gone. (File-only memory processes share whole files instead: see
    {!O1mem.Fom.map_path} and the shared-subtree experiments.) *)

val fork : Kernel.t -> Proc.t -> Proc.t
(** Clone the process: VMAs are duplicated; private resident pages are
    write-protected in both parent and child and shared until one side
    writes (CoW fault); shared file mappings alias the same frames; huge
    anonymous pages are split first (as Linux does); swapped-out pages
    are brought back in before sharing. Returns the child. *)

val cow_shared_pages : Kernel.t -> Proc.t -> int
(** Diagnostic: resident private pages currently mapped read-only under
    a writable VMA (i.e. still shared, waiting for a CoW break). *)
