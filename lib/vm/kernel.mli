(** The baseline operating system: a Linux-like VM over the simulated
    machine. This is the system the paper criticises — every operation
    below does per-page work — and the comparison point for the
    file-only-memory library ({!Fom}).

    One [Kernel.t] owns the machine: physical memory, the buddy
    allocator, per-page metadata, a tmpfs (DRAM) and optionally a PMFS
    (NVM), the swap device, the reclaim lists, and all processes. *)

type config = {
  dram_bytes : int;
  nvm_bytes : int;
  levels : int;  (** page-table levels: 4 or 5 *)
  walk_mode : Hw.Walker.mode;
  reclaim_policy : Reclaim.policy;
  cores : int;  (** simulated cores, each with its own TLB + range TLB *)
  numa_nodes : int;  (** NUMA domains; cores and frames are partitioned contiguously *)
  tlb_sets : int;
  tlb_ways : int;
  range_tlb_entries : int;  (** capacity given to processes created with range translations *)
  fs_erase : Fs.Memfs.erase_policy;  (** zeroing discipline of tmpfs and PMFS *)
  swap_backing : [ `Device | `Pmfs ];  (** where swapped pages go: NVMe-class device, or a swapfile in PMFS *)
  aslr : bool;  (** randomize each process's mmap base (2 MiB granularity). Note PBM regions are exempt by construction — the security trade of VA = PA + offset. *)
  cost_model : Sim.Cost_model.t;
  trace_capacity : int;  (** event-ring capacity of the kernel-wide {!Sim.Trace.t} *)
}

val default_config : config
(** 1 GiB DRAM + 4 GiB NVM, 4 levels, native walks, CLOCK reclaim, 1 core
    on 1 NUMA node, 1024-entry TLB, 32-entry range TLB, default cost
    model. *)

type t

val create : ?config:config -> unit -> t

(** {1 Machine access} *)

val config : t -> config

val smp : t -> Hw.Smp.t
(** The machine's core complex: per-core TLBs, IPI counters, busy-cycle
    attribution. *)

val sched : t -> Sched.t
val clock : t -> Sim.Clock.t
val stats : t -> Sim.Stats.t

val trace : t -> Sim.Trace.t
(** The machine-wide trace: every component (TLBs, walker, range tables,
    fault handler, file systems, FOM) records latency events into it. *)

val mem : t -> Physmem.Phys_mem.t
val page_meta : t -> Page_meta.t
val buddy : t -> Alloc.Buddy.t
val zero_engine : t -> Physmem.Zero_engine.t

val zero_cache : t -> Alloc.Zero_cache.t
(** Per-order cache of pre-zeroed frames in front of the zero engine;
    anonymous faults and populate paths try it first. Refill it from
    idle time with {!background_zero}. *)

val swap : t -> Swap.t
val reclaim : t -> Reclaim.t
val tmpfs : t -> Fs.Memfs.t
val pmfs : t -> Fs.Memfs.t option
val fault_ctx : t -> Fault.ctx

val background_zero : t -> budget_frames:int -> int
(** Housekeeping step: zero up to [budget_frames] dirty frames and stash
    them in the {!zero_cache} for O(1) handout. Returns frames zeroed. *)

val charge_boot : t -> unit
(** Charge the boot-time per-page metadata initialisation for the whole
    machine (linear in physical memory; kept out of {!create} so
    experiments can measure it separately). *)

(** {1 Processes} *)

val create_process : t -> ?range_translations:bool -> unit -> Proc.t
(** A fresh process, placed on a core by the round-robin scheduler; its
    pid doubles as the ASID tagging its entries in the shared per-core
    TLBs. With [range_translations] it gets a range table (and the use of
    each core's range TLB) in addition to its radix page table. *)

val migrate : t -> Proc.t -> core:int -> unit
(** Move a process to another core (must be inside its affinity mask):
    charges one scheduler slice, bumps "migration", and repoints the
    MMU so subsequent translations fill the new core's TLBs. Entries
    left on the old core stay in the address space's cpumask and are
    shot down by the next invalidation — exactly the cross-core
    coherence traffic the complexity sweeps measure. No-op if already
    there. *)

val exit_process : t -> Proc.t -> unit
(** Tear down every mapping and mark the process dead. Per-page PTE and
    frame release still happen, but all TLB invalidation is gathered into
    one {!Hw.Tlb_batch} flushed at the end — one shootdown pass (or one
    full flush) regardless of how many VMAs the process had. *)

val reset_after_crash : t -> unit
(** Power failure, kernel side: drop every process, userfault
    registration, reclaim list, struct-page record (all DRAM state) and
    every core's TLB contents, and re-baseline the "resident_pages" /
    "tlb_entries" / "range_tlb_entries" / "zero_cache_depth" gauges so
    post-crash observability doesn't report pre-crash occupancy.
    Host-side only — the machine is off, so no cycles are charged.
    Persistent structures (buddy-held page-table frames, file extents)
    are untouched. *)

val process_count : t -> int

val processes : t -> (int, Proc.t) Hashtbl.t
(** The live process table (pid -> process). Treat as read-only; used by
    the OOM killer and diagnostics. *)

(** {1 Syscalls} *)

val mmap_anon : t -> Proc.t -> len:int -> prot:Hw.Prot.t -> populate:bool -> int
(** mmap(MAP_ANONYMOUS | MAP_PRIVATE [| MAP_POPULATE]): returns the
    mapping's base VA. *)

val mmap_file :
  t -> Proc.t -> fs:Fs.Memfs.t -> path:string -> prot:Hw.Prot.t -> share:Vma.share ->
  populate:bool -> ?len:int -> ?offset:int -> unit -> int
(** Map a file (whole file by default). Takes a reference on the file. *)

val munmap : t -> Proc.t -> va:int -> len:int -> unit
(** Unmap a range: per-page PTE teardown and frame release — the
    baseline's linear unmap — but shootdowns for all removed VMAs are
    batched into a single flush ({!Hw.Tlb_batch}). *)

val mprotect : t -> Proc.t -> va:int -> len:int -> prot:Hw.Prot.t -> unit

val mlock : t -> Proc.t -> va:int -> len:int -> unit
(** Pin pages for DMA: per-page flag updates and refcounts, after first
    faulting everything in — the cost the paper contrasts with files'
    implicit pinning. *)

val access : t -> Proc.t -> va:int -> write:bool -> unit
(** One user-level memory access: MMU translate, taking and resolving
    page faults as needed. Raises {!Fault.Segfault} on invalid access. *)

val access_range : t -> Proc.t -> va:int -> len:int -> write:bool -> stride:int -> int
(** Touch [va + k*stride] for every multiple inside the range; returns
    the number of accesses. Convenience for the benchmarks. *)

val read_syscall : t -> Proc.t -> fs:Fs.Memfs.t -> ino:int -> off:int -> len:int -> int
(** The read() path: trap + file-system read + copy to the user buffer.
    Returns bytes read. *)

val context_switch : t -> from_:Proc.t -> to_:Proc.t -> asids:bool -> unit
(** Switch the CPU between processes: charges the scheduler cost, and —
    without address-space identifiers ([asids:false], the old-x86
    behaviour) — flushes the incoming process's TLBs, since its entries
    could not have been kept alongside another process's. With ASIDs the
    entries survive, which is also what makes globally shared mappings
    (FOM masters, PBM) pay off across switches. *)

val madvise_dontneed : t -> Proc.t -> va:int -> len:int -> int
(** MADV_DONTNEED on an anonymous range: per-page unmap + frame release +
    shootdown; the VMA stays, later touches refault zero pages. Returns
    pages released. This is the per-page release path the paper says the
    heap "need not" use under file-only memory. *)

(** {1 User-level paging (userfaultfd)} *)

val userfault : t -> Userfault.t
(** The machine-wide userfault registry. Faults on unmapped pages inside
    a registered range are delivered to the user handler (charging the
    trap, two context switches and the UFFDIO_COPY syscall) instead of
    the kernel fault path. *)

val user_page_release : t -> Proc.t -> va:int -> Physmem.Frame.t option
(** Evict one handler-installed page: unmap it, shoot down its TLB entry
    and free the frame. Returns the frame it occupied, or [None] if the
    page was not mapped. The user pager's half of user-level swapping. *)
