type resolution = Provide of string | Zero_page | Sigbus

type handler = va:int -> write:bool -> resolution

type region = { start : int; len : int; prot : Hw.Prot.t; handler : handler }

type t = { regions : (int, region list) Hashtbl.t (* by pid *) }

let create () = { regions = Hashtbl.create 8 }

let of_pid t pid = Option.value (Hashtbl.find_opt t.regions pid) ~default:[]

let register t ~pid ~va ~len ~prot handler =
  if len <= 0 then invalid_arg "Userfault.register: empty range";
  let existing = of_pid t pid in
  if List.exists (fun r -> va < r.start + r.len && r.start < va + len) existing then
    invalid_arg "Userfault.register: overlapping registration";
  Hashtbl.replace t.regions pid ({ start = va; len; prot; handler } :: existing)

let unregister t ~pid ~va =
  let existing = of_pid t pid in
  if not (List.exists (fun r -> r.start = va) existing) then
    invalid_arg "Userfault.unregister: no such registration";
  Hashtbl.replace t.regions pid (List.filter (fun r -> r.start <> va) existing)

let find t ~pid ~va =
  List.find_opt (fun r -> va >= r.start && va < r.start + r.len) (of_pid t pid)
  |> Option.map (fun r -> (r.handler, r.prot))

let region_count t ~pid = List.length (of_pid t pid)

let clear t = Hashtbl.reset t.regions

let iter_regions t f =
  Hashtbl.iter
    (fun pid regions -> List.iter (fun r -> f ~pid ~va:r.start ~len:r.len) regions)
    t.regions
