(** Page reclamation for the baseline VM: CLOCK (second chance) and a
    2Q-style active/inactive scheme.

    This is the linear machinery the paper says ample memory makes
    unnecessary: to find a few cold pages the kernel examines page after
    page, checking and clearing accessed bits. Reclaim cost is charged
    per page examined; experiment E12 compares it against file-granular
    discard. *)

type policy = Clock | Two_q

type t

val create :
  mem:Physmem.Phys_mem.t -> meta:Page_meta.t -> buddy:Alloc.Buddy.t -> swap:Swap.t ->
  zero:Physmem.Zero_engine.t -> policy:policy -> t

val register : t -> pid:int -> aspace:Address_space.t -> va:int -> pfn:Physmem.Frame.t -> unit
(** Put a freshly mapped anonymous page on the reclaim lists. Stale
    entries (pages since unmapped) are detected and dropped during
    scans, so there is no unregister. *)

val scan : t -> target_frames:int -> int
(** Scan until [target_frames] frames have been reclaimed or the lists
    are exhausted. Clean cold pages are dropped; dirty cold pages are
    swapped out. Returns frames actually reclaimed. *)

val clear : t -> unit
(** Forget every tracked page (no cost). Used after a crash: the lists
    reference page tables of processes that died with the machine, and
    evicting through them would corrupt the rebooted metadata. *)

val tracked : t -> int
(** Entries currently on the lists (including stale ones). *)

val pages_examined : t -> int
(** Cumulative pages examined by all scans (the linear work). *)
