type policy = Clock | Two_q

type entry = { pid : int; aspace : Address_space.t; va : int; pfn : Physmem.Frame.t }

type t = {
  mem : Physmem.Phys_mem.t;
  meta : Page_meta.t;
  buddy : Alloc.Buddy.t;
  swap : Swap.t;
  zero : Physmem.Zero_engine.t;
  policy : policy;
  active : entry Queue.t; (* Two_q only *)
  inactive : entry Queue.t; (* Clock uses just this one *)
  mutable examined : int;
}

let create ~mem ~meta ~buddy ~swap ~zero ~policy =
  {
    mem;
    meta;
    buddy;
    swap;
    zero;
    policy;
    active = Queue.create ();
    inactive = Queue.create ();
    examined = 0;
  }

let clock t = Physmem.Phys_mem.clock t.mem
let stats t = Physmem.Phys_mem.stats t.mem

let clear t =
  Queue.clear t.active;
  Queue.clear t.inactive

let register t ~pid ~aspace ~va ~pfn =
  Page_meta.set_flag t.meta pfn Page_meta.Lru true;
  Queue.add { pid; aspace; va; pfn } t.inactive

(* The entry is current iff the page table still maps this VA to this
   frame; otherwise the page went away (munmap, CoW replacement). *)
let current e =
  match Hw.Page_table.lookup (Address_space.page_table e.aspace) ~va:e.va with
  | Some (_, leaf) -> if leaf.Hw.Page_table.pfn = e.pfn then Some leaf else None
  | None -> None

let examine_cost = 50

(* One shootdown batch per distinct address space touched during a scan:
   evictions only gather ranges here, and the scan flushes each batch
   once at the end instead of paying one shootdown per evicted page. *)
let batch_for batches aspace =
  match List.find_opt (fun (a, _) -> a == aspace) !batches with
  | Some (_, b) -> b
  | None ->
    let b = Hw.Tlb_batch.create (Address_space.mmu aspace) in
    batches := (aspace, b) :: !batches;
    b

let flush_batches batches = List.iter (fun (_, b) -> Hw.Tlb_batch.flush b) !batches

let evict t e (leaf : Hw.Page_table.leaf) ~batch =
  let table = Address_space.page_table e.aspace in
  if leaf.Hw.Page_table.dirty then begin
    Swap.swap_out t.swap ~key:(e.pid, e.va) ~pfn:e.pfn;
    Sim.Stats.incr (stats t) "reclaim_swapped"
  end
  else Sim.Stats.incr (stats t) "reclaim_dropped";
  Hw.Page_table.unmap_page table ~va:e.va;
  Hw.Tlb_batch.add batch ~va:e.va ~len:Sim.Units.page_size;
  Page_meta.dec_mapcount t.meta e.pfn;
  Page_meta.put_page t.meta e.pfn;
  Page_meta.set_flag t.meta e.pfn Page_meta.Lru false;
  (* Freed frames go back through the zeroing pipeline. *)
  Physmem.Zero_engine.put_dirty t.zero [ e.pfn ];
  ignore (Physmem.Zero_engine.background_step t.zero ~budget_frames:2)

let scan_clock t ~target_frames =
  let reclaimed = ref 0 in
  let batches = ref [] in
  let budget = ref (4 * (Queue.length t.inactive + 1)) in
  while !reclaimed < target_frames && (not (Queue.is_empty t.inactive)) && !budget > 0 do
    decr budget;
    let e = Queue.pop t.inactive in
    t.examined <- t.examined + 1;
    Sim.Clock.charge (clock t) examine_cost;
    Sim.Stats.incr (stats t) "reclaim_examined";
    match current e with
    | None -> () (* stale: drop silently *)
    | Some leaf ->
      if Page_meta.get_flag t.meta e.pfn Page_meta.Unevictable then
        (* mlocked: parked off the LRU for good, as on Linux's
           unevictable list. *)
        Sim.Stats.incr (stats t) "reclaim_unevictable"
      else if leaf.Hw.Page_table.accessed then begin
        (* Second chance. *)
        leaf.Hw.Page_table.accessed <- false;
        Queue.add e t.inactive
      end
      else begin
        evict t e leaf ~batch:(batch_for batches e.aspace);
        incr reclaimed
      end
  done;
  flush_batches batches;
  !reclaimed

let scan_two_q t ~target_frames =
  let reclaimed = ref 0 in
  let batches = ref [] in
  let budget = ref (4 * (Queue.length t.inactive + Queue.length t.active + 1)) in
  while !reclaimed < target_frames
        && (not (Queue.is_empty t.inactive && Queue.is_empty t.active))
        && !budget > 0
  do
    decr budget;
    (* Keep the inactive list at least a third of the tracked pages. *)
    if
      Queue.length t.inactive * 2 < Queue.length t.active
      && not (Queue.is_empty t.active)
    then begin
      let e = Queue.pop t.active in
      t.examined <- t.examined + 1;
      Sim.Clock.charge (clock t) examine_cost;
      match current e with
      | None -> ()
      | Some leaf ->
        leaf.Hw.Page_table.accessed <- false;
        Queue.add e t.inactive
    end
    else if not (Queue.is_empty t.inactive) then begin
      let e = Queue.pop t.inactive in
      t.examined <- t.examined + 1;
      Sim.Clock.charge (clock t) examine_cost;
      Sim.Stats.incr (stats t) "reclaim_examined";
      match current e with
      | None -> ()
      | Some leaf ->
        if Page_meta.get_flag t.meta e.pfn Page_meta.Unevictable then
          Sim.Stats.incr (stats t) "reclaim_unevictable"
        else if leaf.Hw.Page_table.accessed then begin
          (* Promote to the active list. *)
          leaf.Hw.Page_table.accessed <- false;
          Page_meta.set_flag t.meta e.pfn Page_meta.Active true;
          Queue.add e t.active
        end
        else begin
          evict t e leaf ~batch:(batch_for batches e.aspace);
          incr reclaimed
        end
    end
  done;
  flush_batches batches;
  !reclaimed

let scan t ~target_frames =
  Sim.Trace.prof_span (Physmem.Phys_mem.trace t.mem) "reclaim" @@ fun () ->
  match t.policy with
  | Clock -> scan_clock t ~target_frames
  | Two_q -> scan_two_q t ~target_frames

let tracked t = Queue.length t.inactive + Queue.length t.active
let pages_examined t = t.examined
