type backing = Anon | File of { fs : Fs.Memfs.t; ino : int; file_offset : int }

type share = Private | Shared

type t = {
  mutable start : int;
  mutable len : int;
  mutable prot : Hw.Prot.t;
  backing : backing;
  share : share;
  mutable populated : bool;
}

let make ~start ~len ~prot ~backing ~share =
  if len <= 0 || not (Sim.Units.is_aligned start ~align:Sim.Units.page_size) then
    invalid_arg "Vma.make: empty or unaligned region";
  { start; len; prot; backing; share; populated = false }

let end_ t = t.start + t.len
let contains t va = va >= t.start && va < end_ t

let can_merge a b =
  (match (a.backing, b.backing) with Anon, Anon -> true | _ -> false)
  && end_ a = b.start
  && Hw.Prot.equal a.prot b.prot
  && a.share = b.share && a.populated = b.populated

let file_page_of_va t ~va =
  match t.backing with
  | File { file_offset; _ } -> (file_offset + (va - t.start)) / Sim.Units.page_size
  | Anon -> invalid_arg "Vma.file_page_of_va: anonymous VMA"

let pp ppf t =
  Format.fprintf ppf "%#x-%#x %a %s%s" t.start (end_ t) Hw.Prot.pp t.prot
    (match t.backing with Anon -> "anon" | File { ino; _ } -> "file:" ^ string_of_int ino)
    (match t.share with Private -> " private" | Shared -> " shared")
