(** User-level page-fault handling, after Linux's userfaultfd.

    The paper (§3.1): with file-only memory the kernel stops swapping;
    "those applications that need swapping could implement it themselves
    using techniques such as userfaultd". A process registers a virtual
    range with a handler; faults there are delivered to the handler,
    which supplies page contents (UFFDIO_COPY), asks for a zero page, or
    refuses the access. *)

type resolution =
  | Provide of string  (** install a page holding these bytes (rest zero) *)
  | Zero_page  (** install a zero-filled page *)
  | Sigbus  (** deny: the faulting access raises {!Fault.Segfault} *)

type handler = va:int -> write:bool -> resolution

type t

val create : unit -> t

val register : t -> pid:int -> va:int -> len:int -> prot:Hw.Prot.t -> handler -> unit
(** Watch [va, va+len) of process [pid]. Pages installed on behalf of the
    handler get protection [prot]. Raises [Invalid_argument] on overlap
    with an existing registration of the same process. *)

val unregister : t -> pid:int -> va:int -> unit
(** Drop the registration starting at [va]. *)

val find : t -> pid:int -> va:int -> (handler * Hw.Prot.t) option
(** The handler covering [va], if any. *)

val region_count : t -> pid:int -> int

val clear : t -> unit
(** Drop every registration (all processes). *)

val iter_regions : t -> (pid:int -> va:int -> len:int -> unit) -> unit
(** Visit every registered range (host-side, no cost) — the invariant
    checker uses this to account for handler-installed pages that have
    no VMA. *)
