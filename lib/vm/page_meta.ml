type flag =
  | Locked
  | Referenced
  | Uptodate
  | Dirty
  | Lru
  | Active
  | Slab_page
  | Reserved
  | Private
  | Writeback
  | Head
  | Swapcache
  | Swapbacked
  | Mappedtodisk
  | Reclaim
  | Unevictable
  | Mlocked
  | Pinned

let bit_of = function
  | Locked -> 0
  | Referenced -> 1
  | Uptodate -> 2
  | Dirty -> 3
  | Lru -> 4
  | Active -> 5
  | Slab_page -> 6
  | Reserved -> 7
  | Private -> 8
  | Writeback -> 9
  | Head -> 10
  | Swapcache -> 11
  | Swapbacked -> 12
  | Mappedtodisk -> 13
  | Reclaim -> 14
  | Unevictable -> 15
  | Mlocked -> 16
  | Pinned -> 17

type page = { mutable flags : int; mutable refcount : int; mutable mapcount : int }

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  frames : int;
  pages : (int, page) Hashtbl.t;
}

let bytes_per_page = 64

let create ~clock ~stats ~frames = { clock; stats; frames; pages = Hashtbl.create 1024 }

let frames t = t.frames

let page t pfn =
  if pfn < 0 || pfn >= t.frames then invalid_arg "Page_meta: frame out of range";
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> p
  | None ->
    let p = { flags = 0; refcount = 0; mapcount = 0 } in
    Hashtbl.add t.pages pfn p;
    p

let charge_meta t =
  Sim.Clock.charge t.clock 8;
  Sim.Stats.incr t.stats "struct_page_update"

let get_flag t pfn f = page t pfn |> fun p -> p.flags land (1 lsl bit_of f) <> 0

let set_flag t pfn f v =
  charge_meta t;
  let p = page t pfn in
  let mask = 1 lsl bit_of f in
  p.flags <- (if v then p.flags lor mask else p.flags land lnot mask)

let refcount t pfn = (page t pfn).refcount

let get_page t pfn =
  charge_meta t;
  let p = page t pfn in
  p.refcount <- p.refcount + 1

let put_page t pfn =
  charge_meta t;
  let p = page t pfn in
  if p.refcount <= 0 then invalid_arg "Page_meta.put_page: refcount underflow";
  p.refcount <- p.refcount - 1

let mapcount t pfn = (page t pfn).mapcount

(* Mapcount 0 -> 1 / 1 -> 0 transitions are the machine-wide choke point
   for residency: a frame is resident iff some address space maps it. *)
let inc_mapcount t pfn =
  charge_meta t;
  let p = page t pfn in
  p.mapcount <- p.mapcount + 1;
  if p.mapcount = 1 then Sim.Stats.add_gauge t.stats "resident_pages" 1

let dec_mapcount t pfn =
  charge_meta t;
  let p = page t pfn in
  if p.mapcount <= 0 then invalid_arg "Page_meta.dec_mapcount: underflow";
  p.mapcount <- p.mapcount - 1;
  if p.mapcount = 0 then Sim.Stats.add_gauge t.stats "resident_pages" (-1)

let init_range t ~first ~count =
  if first < 0 || count < 0 || first + count > t.frames then
    invalid_arg "Page_meta.init_range: out of range";
  let model = Sim.Clock.model t.clock in
  Sim.Clock.charge t.clock (count * model.Sim.Cost_model.struct_page_init);
  Sim.Stats.add t.stats "struct_page_init" count

let metadata_bytes t = t.frames * bytes_per_page

let reset_after_crash t =
  (* struct pages live in DRAM: a crash reinitializes them all. The
     residency gauge must follow, or post-crash observability reports
     mappings of processes that no longer exist. *)
  Hashtbl.reset t.pages;
  Sim.Stats.set_gauge t.stats "resident_pages" 0

let iter_counts t f =
  Hashtbl.iter (fun pfn p -> f pfn ~refcount:p.refcount ~mapcount:p.mapcount) t.pages

let resident_pages t =
  Hashtbl.fold (fun _ p acc -> if p.mapcount > 0 then acc + 1 else acc) t.pages 0
