let maps (proc : Proc.t) =
  let buf = Buffer.create 256 in
  Address_space.iter_vmas proc.Proc.aspace (fun v ->
      Buffer.add_string buf
        (Format.asprintf "%012x-%012x %a %s\n" v.Vma.start (Vma.end_ v) Hw.Prot.pp v.Vma.prot
           (match v.Vma.backing with
           | Vma.Anon -> "anon"
           | Vma.File { ino; file_offset; _ } ->
             Printf.sprintf "file ino=%d off=%#x" ino file_offset)));
  Buffer.contents buf

let rss_pages (proc : Proc.t) =
  let table = Address_space.page_table proc.Proc.aspace in
  let n = ref 0 in
  Hw.Page_table.iter_leaves table (fun _ leaf ->
      n := !n + Hw.Page_size.frames leaf.Hw.Page_table.size);
  !n

let pss_pages k (proc : Proc.t) =
  let meta = Kernel.page_meta k in
  let table = Address_space.page_table proc.Proc.aspace in
  let acc = ref 0.0 in
  Hw.Page_table.iter_leaves table (fun _ leaf ->
      let pages = Hw.Page_size.frames leaf.Hw.Page_table.size in
      let share = max 1 (Page_meta.mapcount meta leaf.Hw.Page_table.pfn) in
      acc := !acc +. (float_of_int pages /. float_of_int share));
  !acc

let pt_bytes (proc : Proc.t) =
  Hw.Page_table.metadata_bytes (Address_space.page_table proc.Proc.aspace)

let smaps_summary k (proc : Proc.t) =
  let stats = Kernel.stats k in
  Printf.sprintf
    "pid %d: %d vmas, rss %s, pss %s, page tables %s\n\
     machine: resident %d pages (hwm %d), zero-cache depth %d (hwm %d), tlb %d entries (hwm \
     %d), range-tlb %d entries (hwm %d)"
    proc.Proc.pid
    (Address_space.vma_count proc.Proc.aspace)
    (Sim.Units.bytes_to_string (rss_pages proc * Sim.Units.page_size))
    (Sim.Units.bytes_to_string
       (* Round to nearest: truncation under-reports PSS for shared
          mappings (e.g. 2 pages / 3 sharers = 2730.67 B, not 2730 B). *)
       (int_of_float (Float.round (pss_pages k proc *. float_of_int Sim.Units.page_size))))
    (Sim.Units.bytes_to_string (pt_bytes proc))
    (Sim.Stats.gauge stats "resident_pages")
    (Sim.Stats.gauge_hwm stats "resident_pages")
    (Sim.Stats.gauge stats "zero_cache_depth")
    (Sim.Stats.gauge_hwm stats "zero_cache_depth")
    (Sim.Stats.gauge stats "tlb_entries")
    (Sim.Stats.gauge_hwm stats "tlb_entries")
    (Sim.Stats.gauge stats "range_tlb_entries")
    (Sim.Stats.gauge_hwm stats "range_tlb_entries")
