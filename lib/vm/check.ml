(* Cross-layer invariant checking. Everything here is host-side
   introspection: no cycles are charged, no counters move, so a check can
   run after any scenario (or between fault injections) without
   perturbing the measurement it is validating. *)

type violation = { check : string; detail : string }

let page_size = Sim.Units.page_size

let violation_to_string v = Printf.sprintf "[%s] %s" v.check v.detail

(* Count page-table references per frame, walking only ranges the VM
   layer owns: VMAs and userfault registrations. FOM mappings (grafted
   subtrees, range translations) deliberately bypass struct-page
   accounting — the file system owns those frames — so they are out of
   scope here. A leaf is counted once per address space at its
   size-aligned base, matching how THP accounts a huge mapping as one
   mapcount on the block head. *)
let count_refs kernel procs =
  let refs = Hashtbl.create 256 in
  let seen = Hashtbl.create 256 in
  let count_leaf pid ~va (leaf : Hw.Page_table.leaf) =
    let base = Sim.Units.round_down va ~align:(Hw.Page_size.bytes leaf.Hw.Page_table.size) in
    if not (Hashtbl.mem seen (pid, base)) then begin
      Hashtbl.add seen (pid, base) ();
      let pfn = leaf.Hw.Page_table.pfn in
      Hashtbl.replace refs pfn (1 + Option.value (Hashtbl.find_opt refs pfn) ~default:0)
    end
  in
  let scan_range pid table ~start ~len =
    let rec go va =
      if va < start + len then begin
        (match Hw.Page_table.lookup table ~va with
        | Some (_, leaf) -> count_leaf pid ~va leaf
        | None -> ());
        go (va + page_size)
      end
    in
    go start
  in
  List.iter
    (fun (proc : Proc.t) ->
      let table = Address_space.page_table proc.Proc.aspace in
      Address_space.iter_vmas proc.Proc.aspace (fun vma ->
          scan_range proc.Proc.pid table ~start:vma.Vma.start ~len:vma.Vma.len))
    procs;
  Userfault.iter_regions (Kernel.userfault kernel) (fun ~pid ~va ~len ->
      match List.find_opt (fun (p : Proc.t) -> p.Proc.pid = pid) procs with
      | Some proc -> scan_range pid (Address_space.page_table proc.Proc.aspace) ~start:va ~len
      | None -> ());
  refs

(* Page-table leaves must never grant an access the covering VMA
   forbids. The converse is legal (CoW leaves are write-protected below
   a writable VMA). *)
let check_vma_pt acc procs =
  List.iter
    (fun (proc : Proc.t) ->
      let table = Address_space.page_table proc.Proc.aspace in
      Address_space.iter_vmas proc.Proc.aspace (fun vma ->
          let rec go va =
            if va < vma.Vma.start + vma.Vma.len then begin
              (match Hw.Page_table.lookup table ~va with
              | Some (_, leaf) ->
                let lp = leaf.Hw.Page_table.prot and vp = vma.Vma.prot in
                if
                  (lp.Hw.Prot.read && not vp.Hw.Prot.read)
                  || (lp.Hw.Prot.write && not vp.Hw.Prot.write)
                  || (lp.Hw.Prot.exec && not vp.Hw.Prot.exec)
                then
                  acc :=
                    {
                      check = "vma_pt_prot";
                      detail =
                        Printf.sprintf "pid %d va 0x%x: leaf grants more than its VMA"
                          proc.Proc.pid va;
                    }
                    :: !acc
              | None -> ());
              go (va + page_size)
            end
          in
          go vma.Vma.start))
    procs

(* Frame refcounts vs mapcounts: every VM-owned mapping we can reach must
   be accounted, and a mapping never outlives its reference. *)
let check_mapcounts acc kernel procs =
  let meta = Kernel.page_meta kernel in
  let refs = count_refs kernel procs in
  Page_meta.iter_counts meta (fun pfn ~refcount ~mapcount ->
      let expected = Option.value (Hashtbl.find_opt refs pfn) ~default:0 in
      if mapcount <> expected then
        acc :=
          {
            check = "mapcount";
            detail =
              Printf.sprintf "frame %d: mapcount %d but %d page-table reference(s)" pfn mapcount
                expected;
          }
          :: !acc;
      if mapcount > refcount then
        acc :=
          {
            check = "refcount";
            detail = Printf.sprintf "frame %d: mapcount %d exceeds refcount %d" pfn mapcount refcount;
          }
          :: !acc);
  (* Frames referenced by a page table but with no metadata record at all
     would be invisible above; flag them too. *)
  Hashtbl.iter
    (fun pfn n ->
      let mapcount = Page_meta.mapcount meta pfn in
      if mapcount = 0 && n > 0 then
        acc :=
          {
            check = "mapcount";
            detail = Printf.sprintf "frame %d: %d page-table reference(s) but mapcount 0" pfn n;
          }
          :: !acc)
    refs

(* After every batched shootdown completed, no core's TLB may hold a
   translation the owning page table no longer backs — a lost shootdown
   ack (the victim core skipped its invalidate) shows up here, on
   whichever core kept the stale entry. Entries are resolved to their
   address space through the ASID (= pid). *)
let check_tlb acc kernel procs =
  let by_asid = Hashtbl.create 16 in
  List.iter (fun (p : Proc.t) -> Hashtbl.replace by_asid p.Proc.pid p) procs;
  Hw.Smp.iter_cores (Kernel.smp kernel) (fun core ->
      Hw.Tlb.iter core.Hw.Smp.tlb (fun ~asid ~va ~size ~pfn ~prot ->
          let stale detail =
            acc :=
              {
                check = "tlb_coherence";
                detail = Printf.sprintf "core %d asid %d va 0x%x: %s" core.Hw.Smp.id asid va detail;
              }
              :: !acc
          in
          match Hashtbl.find_opt by_asid asid with
          | None -> stale "TLB entry for dead address space"
          | Some proc -> (
            let table = Address_space.page_table proc.Proc.aspace in
            match Hw.Page_table.lookup table ~va with
            | None -> stale "TLB entry with no page-table leaf"
            | Some (_, leaf) ->
              if leaf.Hw.Page_table.size <> size then stale "page-size mismatch"
              else if leaf.Hw.Page_table.pfn <> pfn then stale "frame mismatch"
              else if leaf.Hw.Page_table.prot <> prot then stale "protection mismatch")))

(* Per-core TLB counters are local mirrors of the machine-wide stats:
   their sums must reconcile exactly, whichever invalidation branch
   (per-page INVLPG, range, full flush) did the bumping. *)
let check_tlb_accounting acc kernel =
  let stats = Kernel.stats kernel in
  let shootdowns = ref 0 and flushes = ref 0 in
  Hw.Smp.iter_cores (Kernel.smp kernel) (fun core ->
      shootdowns := !shootdowns + Hw.Tlb.shootdowns core.Hw.Smp.tlb;
      flushes := !flushes + Hw.Tlb.flushes core.Hw.Smp.tlb);
  let reconcile name local =
    let global = Sim.Stats.get stats name in
    if local <> global then
      acc :=
        {
          check = "tlb_accounting";
          detail =
            Printf.sprintf "per-core %s counters sum to %d but the global stat is %d" name local
              global;
        }
        :: !acc
  in
  reconcile "tlb_shootdown" !shootdowns;
  reconcile "tlb_flush" !flushes

(* The quota, the extent trees and the space bitmap are three views of
   the same resource; they must agree exactly. *)
let check_fs acc ~name fs =
  let quota = Fs.Memfs.quota_used_frames fs in
  let extents = Fs.Memfs.data_pages fs in
  let bitmap = Fs.Memfs.used_bytes fs / page_size in
  if quota <> extents then
    acc :=
      {
        check = "fs_accounting";
        detail = Printf.sprintf "%s: quota holds %d frames, extent trees hold %d" name quota extents;
      }
      :: !acc;
  if bitmap <> extents then
    acc :=
      {
        check = "fs_accounting";
        detail =
          Printf.sprintf "%s: space bitmap has %d frames used, extent trees hold %d" name bitmap
            extents;
      }
      :: !acc

(* Extension rules: layers above [os] (e.g. the object store) register
   invariants here so [run] stays the single entry point. Rules are
   global — each must filter on the kernel it is handed (physical
   equality against the kernel it was built for) and return [] for any
   other machine. *)
let extra_rules : (string, Kernel.t -> violation list) Hashtbl.t = Hashtbl.create 8

let register_rule ~name rule = Hashtbl.replace extra_rules name rule
let unregister_rule ~name = Hashtbl.remove extra_rules name

let run kernel =
  let acc = ref [] in
  let procs =
    Hashtbl.fold (fun _ p l -> if p.Proc.alive then p :: l else l) (Kernel.processes kernel) []
    |> List.sort (fun (a : Proc.t) b -> compare a.Proc.pid b.Proc.pid)
  in
  check_vma_pt acc procs;
  check_mapcounts acc kernel procs;
  check_tlb acc kernel procs;
  check_tlb_accounting acc kernel;
  check_fs acc ~name:"tmpfs" (Kernel.tmpfs kernel);
  (match Kernel.pmfs kernel with Some fs -> check_fs acc ~name:"pmfs" fs | None -> ());
  let extras =
    Hashtbl.fold (fun name rule l -> (name, rule) :: l) extra_rules []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (_, rule) -> acc := List.rev_append (rule kernel) !acc) extras;
  List.rev !acc

let pp ppf vs =
  match vs with
  | [] -> Format.fprintf ppf "all invariants hold"
  | vs ->
    Format.fprintf ppf "@[<v>%d invariant violation(s):@," (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "  %s@," (violation_to_string v)) vs;
    Format.fprintf ppf "@]"
