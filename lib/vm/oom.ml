let pick_victim k ?except () =
  let best = ref None in
  Hashtbl.iter
    (fun pid (p : Proc.t) ->
      if Some pid <> except && p.Proc.alive then begin
        let rss = Procfs.rss_pages p in
        match !best with
        | Some (_, best_rss, best_pid) when best_rss > rss || (best_rss = rss && best_pid < pid)
          -> ()
        | _ -> best := Some (p, rss, pid)
      end)
    (Kernel.processes k);
  Option.map (fun (p, _, _) -> p) !best

let on_pressure k ?except () =
  match pick_victim k ?except () with
  | None -> None
  | Some victim ->
    let pid = victim.Proc.pid in
    Kernel.exit_process k victim;
    Sim.Stats.incr (Kernel.stats k) "oom_kill";
    Some pid
