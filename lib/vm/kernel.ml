module Frame = Physmem.Frame
module Phys_mem = Physmem.Phys_mem

type config = {
  dram_bytes : int;
  nvm_bytes : int;
  levels : int;
  walk_mode : Hw.Walker.mode;
  reclaim_policy : Reclaim.policy;
  cores : int;
  numa_nodes : int;
  tlb_sets : int;
  tlb_ways : int;
  range_tlb_entries : int;
  fs_erase : Fs.Memfs.erase_policy;
  swap_backing : [ `Device | `Pmfs ];
  aslr : bool;
  cost_model : Sim.Cost_model.t;
  trace_capacity : int;
}

let default_config =
  {
    dram_bytes = Sim.Units.gib 1;
    nvm_bytes = Sim.Units.gib 4;
    levels = 4;
    walk_mode = Hw.Walker.Native;
    reclaim_policy = Reclaim.Clock;
    cores = 1;
    numa_nodes = 1;
    tlb_sets = 128;
    tlb_ways = 8;
    range_tlb_entries = 32;
    fs_erase = Fs.Memfs.Eager_zero;
    swap_backing = `Device;
    aslr = false;
    cost_model = Sim.Cost_model.default;
    trace_capacity = 4096;
  }

type t = {
  config : config;
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  mem : Phys_mem.t;
  smp : Hw.Smp.t;
  sched : Sched.t;
  meta : Page_meta.t;
  buddy : Alloc.Buddy.t;
  zero : Physmem.Zero_engine.t;
  zcache : Alloc.Zero_cache.t;
  swap : Swap.t;
  reclaim : Reclaim.t;
  tmpfs : Fs.Memfs.t;
  pmfs : Fs.Memfs.t option;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  userfault : Userfault.t;
  aslr_rng : Sim.Rng.t;
  mutable busy_depth : int; (* re-entrancy guard for [on_core] *)
}

let buddy_max_order = 10

let create ?(config = default_config) () =
  let clock = Sim.Clock.create config.cost_model in
  let stats = Sim.Stats.create () in
  let trace = Sim.Trace.create ~clock ~capacity:config.trace_capacity () in
  let mem =
    Phys_mem.create ~clock ~stats ~trace ~dram_bytes:config.dram_bytes
      ~nvm_bytes:config.nvm_bytes ~numa_nodes:config.numa_nodes ()
  in
  let smp =
    Hw.Smp.create ~clock ~stats ~trace ~cores:config.cores ~numa_nodes:config.numa_nodes
      ~tlb_sets:config.tlb_sets ~tlb_ways:config.tlb_ways
      ~range_tlb_entries:config.range_tlb_entries ()
  in
  let sched = Sched.create ~cores:config.cores in
  let dram_frames = Phys_mem.dram_frames mem in
  (* DRAM layout: the low half is the buddy-managed anonymous pool
     (rounded to the buddy's block size); the rest backs tmpfs. *)
  let block = 1 lsl buddy_max_order in
  let anon_frames = Sim.Units.round_down (dram_frames / 2) ~align:block in
  if anon_frames = 0 then invalid_arg "Kernel.create: DRAM too small";
  let tmpfs_frames = dram_frames - anon_frames in
  if tmpfs_frames = 0 then invalid_arg "Kernel.create: no room for tmpfs";
  let buddy =
    Alloc.Buddy.create ~mem ~first:0 ~count:anon_frames ~max_order:buddy_max_order ()
  in
  let tmpfs =
    Fs.Memfs.create ~mem ~first:anon_frames ~count:tmpfs_frames ~mode:Fs.Memfs.Tmpfs
      ~erase:config.fs_erase ()
  in
  let pmfs =
    if config.nvm_bytes > 0 then
      Some
        (Fs.Memfs.create ~mem ~first:dram_frames
           ~count:(Phys_mem.nvm_frames mem)
           ~mode:Fs.Memfs.Pmfs ~erase:config.fs_erase ())
    else None
  in
  let meta = Page_meta.create ~clock ~stats ~frames:(Phys_mem.total_frames mem) in
  let zero = Physmem.Zero_engine.create mem in
  let zcache = Alloc.Zero_cache.create ~mem ~engine:zero () in
  let swap =
    let backing =
      match (config.swap_backing, pmfs) with
      | `Pmfs, Some fs -> Swap.Swapfile fs
      | `Pmfs, None -> invalid_arg "Kernel.create: swap_backing `Pmfs needs NVM"
      | `Device, _ -> Swap.Device
    in
    Swap.create ~mem ~backing ()
  in
  let reclaim =
    Reclaim.create ~mem ~meta ~buddy ~swap ~zero ~policy:config.reclaim_policy
  in
  {
    config;
    clock;
    stats;
    trace;
    mem;
    smp;
    sched;
    meta;
    buddy;
    zero;
    zcache;
    swap;
    reclaim;
    tmpfs;
    pmfs;
    procs = Hashtbl.create 16;
    next_pid = 1;
    userfault = Userfault.create ();
    aslr_rng = Sim.Rng.create ~seed:0x51ed;
    busy_depth = 0;
  }

let config t = t.config
let smp t = t.smp
let sched t = t.sched
let clock t = t.clock
let stats t = t.stats
let trace t = t.trace
let mem t = t.mem
let page_meta t = t.meta
let buddy t = t.buddy
let zero_engine t = t.zero
let zero_cache t = t.zcache
let swap t = t.swap
let reclaim t = t.reclaim
let tmpfs t = t.tmpfs
let pmfs t = t.pmfs

let userfault t = t.userfault

let fault_ctx t =
  {
    Fault.mem = t.mem;
    meta = t.meta;
    buddy = t.buddy;
    swap = t.swap;
    zero = t.zero;
    zcache = t.zcache;
    reclaim = Some t.reclaim;
  }

let background_zero t ~budget_frames = Alloc.Zero_cache.refill t.zcache ~budget_frames

let charge_boot t = Page_meta.init_range t.meta ~first:0 ~count:(Phys_mem.total_frames t.mem)

let charge t c = Sim.Clock.charge t.clock c
let model t = Sim.Clock.model t.clock
let pspan t name f = Sim.Trace.prof_span t.trace name f

let charge_syscall t =
  charge t (model t).Sim.Cost_model.syscall;
  Sim.Stats.incr t.stats "syscall";
  (* Syscall entry doubles as the gauge-sampling heartbeat. *)
  Sim.Stats.sample t.stats ~now:(Sim.Clock.now t.clock)

let causal t = Sim.Trace.causal t.trace

(* Cycle attribution: everything a syscall spends on [proc]'s behalf
   (translation, fault handling, shootdown IPIs, file work) is billed to
   the core the process runs on, the trace core stamp is set for the
   duration, and physical accesses resolve NUMA locality against that
   core's node. Re-entrant kernel paths (mlock faulting pages in via
   [access]) bill only at the outermost frame. *)
let on_core t proc f =
  if t.busy_depth > 0 then f ()
  else begin
    t.busy_depth <- 1;
    let core = proc.Proc.core in
    let prev = Sim.Trace.current_core t.trace in
    Sim.Trace.set_core t.trace core;
    Phys_mem.set_accessor_node t.mem (Hw.Smp.numa_node_of_core t.smp core);
    let start = Sim.Clock.now t.clock in
    let fin () =
      t.busy_depth <- 0;
      Sim.Trace.set_core t.trace prev;
      Hw.Smp.add_busy t.smp core (Sim.Clock.now t.clock - start)
    in
    match f () with
    | v ->
      fin ();
      v
    | exception e ->
      fin ();
      raise e
  end

let alloc_pt_frame t () = Fault.raw_frame_exn ~what:"page-table frame" (fault_ctx t)

let create_process t ?(range_translations = false) () =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let range_table =
    if range_translations then
      Some (Hw.Range_table.create ~clock:t.clock ~stats:t.stats ~trace:t.trace ())
    else None
  in
  let mmap_base =
    if t.config.aslr then
      (* 16 bits of entropy at 2 MiB granularity, clear of the fixed windows. *)
      Some (0x2000_0000_0000 + (Sim.Rng.int t.aslr_rng (1 lsl 16) * Sim.Units.huge_2m))
    else None
  in
  let aspace =
    Address_space.create ~clock:t.clock ~stats:t.stats ~trace:t.trace ~levels:t.config.levels
      ~alloc_pt_frame:(alloc_pt_frame t) ?range_table ~mode:t.config.walk_mode ~smp:t.smp
      ~asid:pid ?mmap_base ()
  in
  (* Round-robin placement: the pid is the ASID tagging this address
     space's entries in whichever core's TLBs it warms. *)
  let core = Sched.pick t.sched ~affinity:(-1) in
  Hw.Mmu.set_core (Address_space.mmu aspace) core;
  let c = causal t in
  let spawn =
    Sim.Causal.emit c
      ~core:(Sim.Trace.current_core t.trace)
      ~op:"spawn"
      ~detail:(Printf.sprintf "pid%d" pid)
      ()
  in
  let place = Sim.Causal.emit c ~core ~op:"sched_place" ~detail:(Printf.sprintf "pid%d" pid) () in
  Sim.Causal.link c ~src:spawn ~dst:place ~kind:"sched";
  let p = Proc.create ~pid ~aspace ~core ~affinity:(-1) () in
  Hashtbl.replace t.procs pid p;
  p

let migrate t proc ~core =
  if core < 0 || core >= Hw.Smp.cores t.smp then invalid_arg "Kernel.migrate: no such core";
  if proc.Proc.affinity land (1 lsl core) = 0 then
    invalid_arg "Kernel.migrate: core not in affinity mask";
  if core <> proc.Proc.core then begin
    pspan t "migrate" @@ fun () ->
    let c = causal t in
    let detail = Printf.sprintf "pid%d" proc.Proc.pid in
    let out = Sim.Causal.emit c ~core:proc.Proc.core ~op:"migrate_out" ~detail () in
    let start = Sim.Clock.now t.clock in
    charge t (model t).Sim.Cost_model.scheduler;
    Sim.Stats.incr t.stats "migration";
    proc.Proc.core <- core;
    Hw.Mmu.set_core (Address_space.mmu proc.Proc.aspace) core;
    let in_ = Sim.Causal.emit c ~core ~op:"migrate_in" ~detail () in
    Sim.Causal.link c ~src:out ~dst:in_ ~kind:"migrate";
    (* The placement work runs on the destination core. *)
    let cycles = Sim.Clock.now t.clock - start in
    Sim.Causal.attribute c ~core ~share:Sim.Causal.Sched ~cycles;
    Hw.Smp.add_busy t.smp core cycles
  end

let process_count t = Hashtbl.length t.procs
let processes t = t.procs

(* Release one mapped page during munmap/exit teardown. *)
let release_page t (vma : Vma.t) ~page_va (leaf : Hw.Page_table.leaf) =
  let pfn = leaf.Hw.Page_table.pfn in
  Page_meta.dec_mapcount t.meta pfn;
  Page_meta.put_page t.meta pfn;
  match vma.Vma.backing with
  | Vma.Anon ->
    ignore page_va;
    if Page_meta.mapcount t.meta pfn = 0 then
      Physmem.Zero_engine.put_dirty t.zero [ pfn ]
  | Vma.File _ ->
    (* File frames belong to the file system; nothing to free here. *)
    ()

(* Tear down one VMA already removed from its address space: per-page
   release (the baseline's linear unmap cost), with the TLB invalidation
   deferred into [batch] — the mmu_gather pattern. *)
let teardown_vma t (vma : Vma.t) ~table ~batch =
  let pages = vma.Vma.len / Sim.Units.page_size in
  for i = 0 to pages - 1 do
    let page_va = vma.Vma.start + (i * Sim.Units.page_size) in
    match Hw.Page_table.lookup table ~va:page_va with
    | Some (_, leaf) when leaf.Hw.Page_table.size = Hw.Page_size.Small ->
      release_page t vma ~page_va leaf;
      Hw.Page_table.unmap_page table ~va:page_va
    | Some (_, leaf) ->
      (* Huge leaf: unmap once at its base. *)
      let span = Hw.Page_size.bytes leaf.Hw.Page_table.size in
      if Sim.Units.is_aligned page_va ~align:span then begin
        release_page t vma ~page_va leaf;
        Hw.Page_table.unmap_page table ~va:page_va
      end
    | None -> ()
  done;
  Hw.Tlb_batch.add batch ~va:vma.Vma.start ~len:vma.Vma.len;
  match vma.Vma.backing with
  | Vma.File { fs; ino; _ } -> Fs.Memfs.close_file fs ino
  | Vma.Anon -> ()

let munmap t proc ~va ~len =
  on_core t proc @@ fun () ->
  pspan t "munmap" @@ fun () ->
  charge_syscall t;
  let aspace = proc.Proc.aspace in
  let table = Address_space.page_table aspace in
  let removed = Address_space.remove_range aspace ~start:va ~len in
  let batch = Hw.Tlb_batch.create (Address_space.mmu aspace) in
  List.iter (fun vma -> teardown_vma t vma ~table ~batch) removed;
  (* One shootdown pass for the whole span, VMA count notwithstanding. *)
  Hw.Tlb_batch.flush batch

let exit_process t proc =
  on_core t proc @@ fun () ->
  pspan t "exit" @@ fun () ->
  charge_syscall t;
  let aspace = proc.Proc.aspace in
  let table = Address_space.page_table aspace in
  let lo = ref max_int and hi = ref min_int in
  Address_space.iter_vmas aspace (fun (v : Vma.t) ->
      lo := min !lo v.Vma.start;
      hi := max !hi (v.Vma.start + v.Vma.len));
  if !lo < !hi then begin
    (* One range removal spanning every VMA, then one batched flush: exit
       pays O(1) shootdowns no matter how fragmented the address space. *)
    let removed = Address_space.remove_range aspace ~start:!lo ~len:(!hi - !lo) in
    let batch = Hw.Tlb_batch.create (Address_space.mmu aspace) in
    List.iter (fun vma -> teardown_vma t vma ~table ~batch) removed;
    Hw.Tlb_batch.flush batch
  end;
  proc.Proc.alive <- false;
  Hashtbl.remove t.procs proc.Proc.pid

let reset_after_crash t =
  (* Power failure: every process dies with no orderly teardown, and all
     DRAM-resident kernel state (struct pages, reclaim lists, userfault
     registrations, TLBs) is gone. Host-side, no cost — the machine is
     off. Buddy/file-system/zero-cache state is left alone: persistent
     page tables and file extents are exactly what recovery reuses. *)
  Hashtbl.iter (fun _ p -> p.Proc.alive <- false) t.procs;
  Hashtbl.reset t.procs;
  Userfault.clear t.userfault;
  Reclaim.clear t.reclaim;
  Page_meta.reset_after_crash t.meta;
  (* Every core's TLBs lost power with the machine; host-side clear keeps
     the occupancy gauges consistent with zero (the post-recovery
     invariant checker walks these TLBs, so they must not carry pre-crash
     entries for dead address spaces). *)
  Hw.Smp.clear t.smp;
  Sim.Stats.set_gauge t.stats "tlb_entries" 0;
  Sim.Stats.set_gauge t.stats "range_tlb_entries" 0;
  Sim.Stats.set_gauge t.stats "zero_cache_depth" (Alloc.Zero_cache.depth t.zcache)

let register_if_anon t proc ~va =
  let aspace = proc.Proc.aspace in
  match Address_space.find_vma aspace ~va with
  | Some { Vma.backing = Vma.Anon; _ } -> (
    match Hw.Page_table.lookup (Address_space.page_table aspace) ~va with
    | Some (_, leaf) ->
      Reclaim.register t.reclaim ~pid:proc.Proc.pid ~aspace ~va
        ~pfn:leaf.Hw.Page_table.pfn
    | None -> ())
  | _ -> ()

let mmap_anon t proc ~len ~prot ~populate =
  on_core t proc @@ fun () ->
  pspan t "mmap" @@ fun () ->
  charge_syscall t;
  if len <= 0 then invalid_arg "Kernel.mmap_anon: empty mapping";
  let len = Sim.Units.round_up len ~align:Sim.Units.page_size in
  let aspace = proc.Proc.aspace in
  let va = Address_space.alloc_va aspace ~len ~align:Sim.Units.page_size in
  let vma = Vma.make ~start:va ~len ~prot ~backing:Vma.Anon ~share:Vma.Private in
  vma.Vma.populated <- populate;
  Address_space.insert_vma aspace vma;
  if populate then begin
    let ctx = fault_ctx t in
    let pages = len / Sim.Units.page_size in
    for i = 0 to pages - 1 do
      let page_va = va + (i * Sim.Units.page_size) in
      Fault.populate_anon_page ctx ~aspace ~va:page_va ~prot;
      register_if_anon t proc ~va:page_va
    done
  end;
  va

let mmap_file t proc ~fs ~path ~prot ~share ~populate ?len ?(offset = 0) () =
  on_core t proc @@ fun () ->
  pspan t "mmap" @@ fun () ->
  charge_syscall t;
  let ino =
    match Fs.Memfs.lookup fs path with
    | Some ino -> ino
    | None -> invalid_arg ("Kernel.mmap_file: no such file: " ^ path)
  in
  let node = Fs.Memfs.inode fs ino in
  if not (Hw.Prot.subset prot ~of_:node.Fs.Inode.prot) then
    invalid_arg "Kernel.mmap_file: file permission denied";
  let file_len = node.Fs.Inode.size in
  let len =
    match len with
    | Some l -> Sim.Units.round_up l ~align:Sim.Units.page_size
    | None -> Sim.Units.round_up (max 0 (file_len - offset)) ~align:Sim.Units.page_size
  in
  if len = 0 then invalid_arg "Kernel.mmap_file: empty mapping";
  Fs.Memfs.open_file fs ino;
  let aspace = proc.Proc.aspace in
  let va = Address_space.alloc_va aspace ~len ~align:Sim.Units.page_size in
  let vma =
    Vma.make ~start:va ~len ~prot ~backing:(Vma.File { fs; ino; file_offset = offset }) ~share
  in
  vma.Vma.populated <- populate;
  Address_space.insert_vma aspace vma;
  if populate then begin
    let ctx = fault_ctx t in
    let pages = len / Sim.Units.page_size in
    for i = 0 to pages - 1 do
      let page_va = va + (i * Sim.Units.page_size) in
      Fault.populate_file_page ctx ~aspace ~vma ~va:page_va
    done
  end;
  va

let mprotect t proc ~va ~len ~prot =
  on_core t proc @@ fun () ->
  pspan t "mprotect" @@ fun () ->
  charge_syscall t;
  let aspace = proc.Proc.aspace in
  (match Address_space.find_vma aspace ~va with
  | Some vma -> vma.Vma.prot <- prot
  | None -> invalid_arg "Kernel.mprotect: unmapped");
  ignore (Hw.Page_table.protect_range (Address_space.page_table aspace) ~va ~len ~prot);
  Hw.Mmu.invalidate_range (Address_space.mmu aspace) ~va ~len

let context_switch t ~from_ ~to_ ~asids =
  pspan t "context_switch" @@ fun () ->
  let c = causal t in
  let out =
    Sim.Causal.emit c ~core:from_.Proc.core ~op:"switch_out"
      ~detail:(Printf.sprintf "pid%d" from_.Proc.pid) ()
  in
  let start = Sim.Clock.now t.clock in
  charge t (model t).Sim.Cost_model.scheduler;
  Sim.Stats.incr t.stats "context_switch";
  if not asids then Hw.Mmu.flush_tlbs (Address_space.mmu to_.Proc.aspace);
  let in_ =
    Sim.Causal.emit c ~core:to_.Proc.core ~op:"switch_in"
      ~detail:(Printf.sprintf "pid%d" to_.Proc.pid) ()
  in
  Sim.Causal.link c ~src:out ~dst:in_ ~kind:"sched";
  let cycles = Sim.Clock.now t.clock - start in
  Sim.Causal.attribute c ~core:to_.Proc.core ~share:Sim.Causal.Sched ~cycles;
  Hw.Smp.add_busy t.smp to_.Proc.core cycles

let madvise_dontneed t proc ~va ~len =
  on_core t proc @@ fun () ->
  pspan t "madvise" @@ fun () ->
  charge_syscall t;
  let aspace = proc.Proc.aspace in
  let table = Address_space.page_table aspace in
  let released = ref 0 in
  let pages = Sim.Units.pages_of_bytes len in
  for i = 0 to pages - 1 do
    let page_va = Sim.Units.round_down va ~align:Sim.Units.page_size + (i * Sim.Units.page_size) in
    match (Address_space.find_vma aspace ~va:page_va, Hw.Page_table.lookup table ~va:page_va) with
    | Some { Vma.backing = Vma.Anon; _ }, Some (_, leaf)
      when leaf.Hw.Page_table.size = Hw.Page_size.Small ->
      let pfn = leaf.Hw.Page_table.pfn in
      Hw.Page_table.unmap_page table ~va:page_va;
      Hw.Mmu.invalidate_page (Address_space.mmu aspace) ~va:page_va;
      Page_meta.dec_mapcount t.meta pfn;
      Page_meta.put_page t.meta pfn;
      if Page_meta.mapcount t.meta pfn = 0 then Physmem.Zero_engine.put_dirty t.zero [ pfn ];
      incr released
    | _ -> ()
  done;
  Sim.Stats.add t.stats "madvise_released" !released;
  !released

(* Deliver a fault to a user handler: trap, switch to the handler task,
   run it, install the page via the UFFDIO_COPY path, switch back. *)
let handle_userfault t proc ~va ~write ~prot ~(handler : Userfault.handler) =
  pspan t "userfault" @@ fun () ->
  let aspace = proc.Proc.aspace in
  let m = model t in
  charge t m.Sim.Cost_model.fault_trap;
  charge t (2 * m.Sim.Cost_model.scheduler);
  Sim.Stats.incr t.stats "userfault";
  let page_va = Sim.Units.round_down va ~align:Sim.Units.page_size in
  match handler ~va ~write with
  | Userfault.Sigbus -> raise (Fault.Segfault va)
  | Userfault.Zero_page | Userfault.Provide _ as r ->
    charge_syscall t (* UFFDIO_COPY / UFFDIO_ZEROPAGE *);
    let ctx = fault_ctx t in
    let pfn = Fault.fresh_zero_frame ctx in
    (match r with
    | Userfault.Provide content ->
      Phys_mem.write t.mem ~addr:(Frame.to_addr pfn)
        (String.sub content 0 (min (String.length content) Sim.Units.page_size))
    | Userfault.Zero_page | Userfault.Sigbus -> ());
    Hw.Page_table.map_page (Address_space.page_table aspace) ~va:page_va ~pfn ~prot
      ~size:Hw.Page_size.Small;
    Page_meta.get_page t.meta pfn;
    Page_meta.inc_mapcount t.meta pfn

let user_page_release t proc ~va =
  let aspace = proc.Proc.aspace in
  let table = Address_space.page_table aspace in
  let page_va = Sim.Units.round_down va ~align:Sim.Units.page_size in
  match Hw.Page_table.lookup table ~va:page_va with
  | None -> None
  | Some (_, leaf) ->
    let pfn = leaf.Hw.Page_table.pfn in
    Hw.Page_table.unmap_page table ~va:page_va;
    Hw.Mmu.invalidate_page (Address_space.mmu aspace) ~va:page_va;
    Page_meta.dec_mapcount t.meta pfn;
    Page_meta.put_page t.meta pfn;
    Physmem.Zero_engine.put_dirty t.zero [ pfn ];
    Sim.Stats.incr t.stats "userfault_evict";
    Some pfn

let rec access_inner t proc ~va ~write =
  pspan t "access" @@ fun () ->
  let aspace = proc.Proc.aspace in
  match Hw.Mmu.access (Address_space.mmu aspace) ~mem:t.mem ~va ~write with
  | Ok () -> ()
  | Error _ ->
    (match
       ( Hw.Page_table.lookup (Address_space.page_table aspace) ~va,
         Userfault.find t.userfault ~pid:proc.Proc.pid ~va )
     with
    | None, Some (handler, prot) ->
      (* Missing page in a registered range: user-level paging. *)
      handle_userfault t proc ~va ~write ~prot ~handler;
      access_inner t proc ~va ~write
    | _ -> kernel_fault t proc ~va ~write);
    ()

and kernel_fault t proc ~va ~write =
  let aspace = proc.Proc.aspace in
  (let kind = Fault.handle (fault_ctx t) ~aspace ~pid:proc.Proc.pid ~va ~write in
   match kind with
   | Fault.Major -> (
     (* The page came back from swap with real contents: keep it dirty so
        a later eviction writes it out again. *)
     match Hw.Page_table.lookup (Address_space.page_table aspace) ~va with
     | Some (_, leaf) -> leaf.Hw.Page_table.dirty <- true
     | None -> ())
   | Fault.Minor -> ());
  register_if_anon t proc ~va;
  access_inner t proc ~va ~write

let access t proc ~va ~write = on_core t proc @@ fun () -> access_inner t proc ~va ~write

let access_range t proc ~va ~len ~write ~stride =
  if stride <= 0 then invalid_arg "Kernel.access_range: bad stride";
  let count = ref 0 in
  let cursor = ref va in
  while !cursor < va + len do
    access t proc ~va:!cursor ~write;
    incr count;
    cursor := !cursor + stride
  done;
  !count

let mlock t proc ~va ~len =
  on_core t proc @@ fun () ->
  pspan t "mlock" @@ fun () ->
  charge_syscall t;
  let aspace = proc.Proc.aspace in
  let pages = Sim.Units.pages_of_bytes len in
  for i = 0 to pages - 1 do
    let page_va = va + (i * Sim.Units.page_size) in
    (* Fault the page in if needed, then pin it. *)
    access t proc ~va:page_va ~write:false;
    match Hw.Page_table.lookup (Address_space.page_table aspace) ~va:page_va with
    | Some (_, leaf) ->
      let pfn = leaf.Hw.Page_table.pfn in
      Page_meta.get_page t.meta pfn;
      Page_meta.set_flag t.meta pfn Page_meta.Pinned true;
      Page_meta.set_flag t.meta pfn Page_meta.Mlocked true;
      Page_meta.set_flag t.meta pfn Page_meta.Unevictable true
    | None -> assert false
  done;
  Sim.Stats.add t.stats "mlocked_pages" pages

let read_syscall t proc ~fs ~ino ~off ~len =
  on_core t proc @@ fun () ->
  pspan t "read" @@ fun () ->
  charge_syscall t;
  let data = Fs.Memfs.read_file fs ino ~off ~len in
  let n = Bytes.length data in
  (* Copy into the user buffer. *)
  charge t (Sim.Cost_model.copy_cost (model t) ~bytes:n);
  n
