module Frame = Physmem.Frame

type stats = { collapsed : int; pages_copied : int; bytes_copied : int }

let pages_per_huge = Sim.Units.huge_2m / Sim.Units.page_size

(* Collapse one 2 MiB-aligned window of the process. Returns pages
   copied, or None if the window is not collapsible. *)
let try_collapse k (proc : Proc.t) ~window ~prot ~min_pages =
  let aspace = proc.Proc.aspace in
  let table = Address_space.page_table aspace in
  let mem = Kernel.mem k in
  let meta = Kernel.page_meta k in
  let clock = Kernel.clock k in
  let model = Sim.Clock.model clock in
  (* Census: the window must hold only base pages, enough of them. *)
  let present = ref [] in
  let huge_seen = ref false in
  for i = 0 to pages_per_huge - 1 do
    let va = window + (i * Sim.Units.page_size) in
    match Hw.Page_table.lookup table ~va with
    | Some (_, leaf) when leaf.Hw.Page_table.size = Hw.Page_size.Small ->
      present := (va, leaf) :: !present
    | Some _ -> huge_seen := true
    | None -> ()
  done;
  let present = List.rev !present in
  if !huge_seen || List.length present < min_pages || present = [] then None
  else
    match Alloc.Buddy.alloc (Kernel.buddy k) ~order:9 with
    | None -> None (* no 2 MiB of contiguous physical memory: the paper's
                      fragmentation problem in action *)
    | Some block ->
      (* Copy every present page into its slot; zero the gaps. *)
      List.iter
        (fun (va, (leaf : Hw.Page_table.leaf)) ->
          let i = (va - window) / Sim.Units.page_size in
          let src = Frame.to_addr leaf.Hw.Page_table.pfn in
          let dst = Frame.to_addr (block + i) in
          let content = Physmem.Phys_mem.read mem ~addr:src ~len:Sim.Units.page_size in
          Physmem.Phys_mem.write mem ~addr:dst (Bytes.to_string content))
        present;
      let present_idx = List.map (fun (va, _) -> (va - window) / Sim.Units.page_size) present in
      for i = 0 to pages_per_huge - 1 do
        if not (List.mem i present_idx) then Physmem.Phys_mem.zero_frame mem (block + i)
      done;
      (* Tear down the base PTEs and free the scattered frames. *)
      List.iter
        (fun (va, (leaf : Hw.Page_table.leaf)) ->
          let pfn = leaf.Hw.Page_table.pfn in
          Hw.Page_table.unmap_page table ~va;
          Page_meta.dec_mapcount meta pfn;
          Page_meta.put_page meta pfn;
          Physmem.Zero_engine.put_dirty (Kernel.zero_engine k) [ pfn ])
        present;
      Hw.Mmu.invalidate_range (Address_space.mmu aspace) ~va:window ~len:Sim.Units.huge_2m;
      (* One huge leaf replaces them all. *)
      Hw.Page_table.map_page table ~va:window ~pfn:block ~prot ~size:Hw.Page_size.Huge_2m;
      Page_meta.get_page meta block;
      Page_meta.inc_mapcount meta block;
      Page_meta.set_flag meta block Page_meta.Head true;
      Sim.Clock.charge clock (Sim.Cost_model.shootdown_cost model);
      Sim.Stats.incr (Kernel.stats k) "thp_collapse";
      Some (List.length present)

let scan_process k (proc : Proc.t) ?(threshold = 0.9) () =
  let min_pages = max 1 (int_of_float (threshold *. float_of_int pages_per_huge)) in
  let collapsed = ref 0 and copied = ref 0 in
  let windows = ref [] in
  Address_space.iter_vmas proc.Proc.aspace (fun vma ->
      match vma.Vma.backing with
      | Vma.Anon ->
        let first = Sim.Units.round_up vma.Vma.start ~align:Sim.Units.huge_2m in
        let last = Sim.Units.round_down (Vma.end_ vma) ~align:Sim.Units.huge_2m in
        let w = ref first in
        while !w + Sim.Units.huge_2m <= last do
          windows := (!w, vma.Vma.prot) :: !windows;
          w := !w + Sim.Units.huge_2m
        done
      | Vma.File _ -> ());
  List.iter
    (fun (window, prot) ->
      match try_collapse k proc ~window ~prot ~min_pages with
      | Some n ->
        incr collapsed;
        copied := !copied + n
      | None -> ())
    (List.rev !windows);
  { collapsed = !collapsed; pages_copied = !copied; bytes_copied = !copied * Sim.Units.page_size }

let collapse_window k (proc : Proc.t) ~va =
  let window = Sim.Units.round_down va ~align:Sim.Units.huge_2m in
  let prot =
    match Address_space.find_vma proc.Proc.aspace ~va with
    | Some vma -> vma.Vma.prot
    | None -> invalid_arg "Thp.collapse_window: no VMA at address"
  in
  match try_collapse k proc ~window ~prot ~min_pages:1 with Some _ -> true | None -> false

let split_huge k (proc : Proc.t) ~va =
  let aspace = proc.Proc.aspace in
  let table = Address_space.page_table aspace in
  match Hw.Page_table.lookup table ~va with
  | Some (_, leaf) when leaf.Hw.Page_table.size = Hw.Page_size.Huge_2m ->
    let window = Sim.Units.round_down va ~align:Sim.Units.huge_2m in
    let block = leaf.Hw.Page_table.pfn in
    let prot = leaf.Hw.Page_table.prot in
    Hw.Page_table.unmap_page table ~va:window;
    Hw.Mmu.invalidate_page (Address_space.mmu aspace) ~va:window;
    (* Remap the same physical block as 512 base pages. *)
    for i = 0 to pages_per_huge - 1 do
      Hw.Page_table.map_page table
        ~va:(window + (i * Sim.Units.page_size))
        ~pfn:(block + i) ~prot ~size:Hw.Page_size.Small
    done;
    Page_meta.set_flag (Kernel.page_meta k) block Page_meta.Head false;
    Sim.Stats.incr (Kernel.stats k) "thp_split";
    true
  | Some _ | None -> false
