(** Transparent huge-page management (khugepaged / Ingens style).

    The paper (§3) notes that O(1) OS memory management "may enable
    better utilizing" the few page sizes processors support, and cites
    coordinated huge-page management [18, 24]. This module is the
    baseline's version of that machinery: a scanner that {e collapses}
    2 MiB-aligned windows of anonymous base pages into one huge page
    (copying the data into a freshly allocated aligned block, as Linux
    must), and a splitter that shatters a huge page back into base pages
    (what Linux does before swapping one out).

    Collapse is itself linear per window — 512 PTE teardowns plus a 2 MiB
    copy — which is the contrast with file-only memory, where extents are
    born contiguous and need no fix-up pass. *)

type stats = { collapsed : int; pages_copied : int; bytes_copied : int }

val scan_process : Kernel.t -> Proc.t -> ?threshold:float -> unit -> stats
(** One khugepaged pass over the process's anonymous VMAs: every 2 MiB
    window with at least [threshold] (default 0.9) of its 512 base pages
    populated — and no huge leaf already — is collapsed. Absent pages
    materialize as zeroes, trading space for TLB reach. *)

val collapse_window : Kernel.t -> Proc.t -> va:int -> bool
(** Force-collapse the 2 MiB window containing [va] (no threshold check;
    still requires at least one mapped base page and no huge leaf).
    Returns [false] if nothing was done. *)

val split_huge : Kernel.t -> Proc.t -> va:int -> bool
(** Shatter the huge page covering [va] into 512 base PTEs over the same
    physical block — the pre-swap fragmentation the paper mentions
    ("2MB pages are expensive to swap and Linux instead fragments them").
    Returns [false] if [va] is not under a huge leaf. *)
