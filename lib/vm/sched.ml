(* Round-robin core placement with affinity: processes are handed to the
   next core in rotation whose bit is set in their affinity mask. The
   simulator is sequential, so this is a placement policy (which core's
   TLBs a process warms, where its cycles are attributed), not a
   preemption engine. *)

type t = { cores : int; mutable next : int }

let create ~cores =
  if cores <= 0 then invalid_arg "Sched.create: cores must be positive";
  { cores; next = 0 }

let cores t = t.cores

let allowed t ~affinity core = affinity land (1 lsl core) <> 0 && core < t.cores

let pick t ~affinity =
  if affinity land ((1 lsl t.cores) - 1) = 0 then
    invalid_arg "Sched.pick: affinity excludes every core";
  let rec scan i =
    let core = (t.next + i) mod t.cores in
    if allowed t ~affinity core then core else scan (i + 1)
  in
  let core = scan 0 in
  t.next <- (core + 1) mod t.cores;
  core
