module IntMap = Map.Make (Int)

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  table : Hw.Page_table.t;
  mmu : Hw.Mmu.t;
  range_table : Hw.Range_table.t option;
  mutable vmas : Vma.t IntMap.t; (* keyed by start *)
  mutable mmap_cursor : int;
}

(* Default mmap area base, clear of the code/heap/stack layout helpers in
   Proc. *)
let mmap_base = 0x2000_0000_0000

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ~levels ~alloc_pt_frame ?range_table
    ?(mode = Hw.Walker.Native) ?tlb_sets ?tlb_ways ?range_tlb_entries ?smp ?asid
    ?(mmap_base = mmap_base) () =
  let table = Hw.Page_table.create ~clock ~stats ~levels ~alloc_frame:alloc_pt_frame in
  let mmu =
    Hw.Mmu.create ~clock ~stats ~trace ~table ?range_table ~mode ?tlb_sets ?tlb_ways
      ?range_tlb_entries ?smp ?asid ()
  in
  { clock; stats; table; mmu; range_table; vmas = IntMap.empty; mmap_cursor = mmap_base }

let page_table t = t.table
let mmu t = t.mmu
let range_table t = t.range_table

let alloc_va t ~len ~align =
  let base = Sim.Units.round_up t.mmap_cursor ~align in
  t.mmap_cursor <- base + Sim.Units.round_up len ~align:Sim.Units.page_size;
  base

let overlaps t (v : Vma.t) =
  let below = IntMap.find_last_opt (fun s -> s <= v.Vma.start) t.vmas in
  let above = IntMap.find_first_opt (fun s -> s > v.Vma.start) t.vmas in
  (match below with Some (_, b) -> Vma.end_ b > v.Vma.start | None -> false)
  || (match above with Some (_, a) -> Vma.end_ v > a.Vma.start | None -> false)

let insert_vma t v =
  if overlaps t v then invalid_arg "Address_space.insert_vma: overlap";
  Sim.Clock.charge t.clock (Sim.Clock.model t.clock).Sim.Cost_model.vma_setup;
  Sim.Stats.incr t.stats "vma_setup";
  (* Merge with the VMA just below and/or just above, Linux-style. *)
  let v =
    match IntMap.find_last_opt (fun s -> s < v.Vma.start) t.vmas with
    | Some (s, b) when Vma.can_merge b v ->
      t.vmas <- IntMap.remove s t.vmas;
      b.Vma.len <- b.Vma.len + v.Vma.len;
      Sim.Stats.incr t.stats "vma_merge";
      b
    | _ -> v
  in
  let v =
    match IntMap.find_first_opt (fun s -> s >= Vma.end_ v) t.vmas with
    | Some (s, a) when Vma.can_merge v a ->
      t.vmas <- IntMap.remove s t.vmas;
      v.Vma.len <- v.Vma.len + a.Vma.len;
      Sim.Stats.incr t.stats "vma_merge";
      v
    | _ -> v
  in
  t.vmas <- IntMap.add v.Vma.start v t.vmas

let find_vma t ~va =
  match IntMap.find_last_opt (fun s -> s <= va) t.vmas with
  | Some (_, v) when Vma.contains v va -> Some v
  | _ -> None

let remove_range t ~start ~len =
  let finish = start + len in
  let removed = ref [] in
  let to_delete = ref [] in
  let to_add = ref [] in
  IntMap.iter
    (fun s (v : Vma.t) ->
      let v_end = Vma.end_ v in
      if v_end <= start || s >= finish then ()
      else begin
        to_delete := s :: !to_delete;
        (* Head piece survives below the cut. *)
        if s < start then begin
          let head =
            Vma.make ~start:s ~len:(start - s) ~prot:v.Vma.prot ~backing:v.Vma.backing
              ~share:v.Vma.share
          in
          head.Vma.populated <- v.Vma.populated;
          to_add := head :: !to_add
        end;
        (* Tail piece survives above the cut. *)
        if v_end > finish then begin
          let backing =
            match v.Vma.backing with
            | Vma.Anon -> Vma.Anon
            | Vma.File { fs; ino; file_offset } ->
              Vma.File { fs; ino; file_offset = file_offset + (finish - s) }
          in
          let tail =
            Vma.make ~start:finish ~len:(v_end - finish) ~prot:v.Vma.prot ~backing
              ~share:v.Vma.share
          in
          tail.Vma.populated <- v.Vma.populated;
          to_add := tail :: !to_add
        end;
        let cut_start = max s start and cut_end = min v_end finish in
        let piece =
          Vma.make ~start:cut_start ~len:(cut_end - cut_start) ~prot:v.Vma.prot
            ~backing:
              (match v.Vma.backing with
              | Vma.Anon -> Vma.Anon
              | Vma.File { fs; ino; file_offset } ->
                Vma.File { fs; ino; file_offset = file_offset + (cut_start - s) })
            ~share:v.Vma.share
        in
        piece.Vma.populated <- v.Vma.populated;
        removed := piece :: !removed
      end)
    t.vmas;
  List.iter (fun s -> t.vmas <- IntMap.remove s t.vmas) !to_delete;
  List.iter (fun v -> t.vmas <- IntMap.add v.Vma.start v t.vmas) !to_add;
  !removed

let vma_count t = IntMap.cardinal t.vmas
let iter_vmas t f = IntMap.iter (fun _ v -> f v) t.vmas

let mmap_cursor t = t.mmap_cursor
let set_mmap_cursor t v = t.mmap_cursor <- v
