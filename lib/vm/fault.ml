exception Segfault of int

type ctx = {
  mem : Physmem.Phys_mem.t;
  meta : Page_meta.t;
  buddy : Alloc.Buddy.t;
  swap : Swap.t;
  zero : Physmem.Zero_engine.t;
  zcache : Alloc.Zero_cache.t;
  reclaim : Reclaim.t option;
}

type kind = Minor | Major

let clock ctx = Physmem.Phys_mem.clock ctx.mem
let stats ctx = Physmem.Phys_mem.stats ctx.mem
let model ctx = Sim.Clock.model (clock ctx)
let faults ctx = Sim.Trace.faults (Physmem.Phys_mem.trace ctx.mem)

(* The kernel's frame source, with the injection site in front: when
   "frame_alloc_fail" fires the buddy pretends to be empty, pushing the
   caller down its degradation path. *)
let buddy_alloc ctx ~order =
  if Sim.Fault_inject.fires (faults ctx) ~site:Sim.Fault_inject.site_frame_alloc_fail then None
  else Alloc.Buddy.alloc ctx.buddy ~order

(* A frame with unspecified contents: buddy first; when the buddy is dry
   the memory may be sitting in the zero engine — dirty (freed but not
   yet laundered: zero one on demand) or already laundered into its
   zeroed pool (the reclaim-then-retry pass parks frames there) — rather
   than OOM. *)
let raw_frame ctx =
  match buddy_alloc ctx ~order:0 with
  | Some pfn -> Some pfn
  | None ->
    ignore (Physmem.Zero_engine.background_step ctx.zero ~budget_frames:1);
    Physmem.Zero_engine.take_zeroed ctx.zero

(* Graceful degradation: a failed allocation gets exactly one
   reclaim-then-retry pass before the typed OOM surfaces. *)
let with_reclaim_retry ctx alloc =
  match alloc () with
  | Some pfn -> Some pfn
  | None -> (
    match ctx.reclaim with
    | None -> None
    | Some r ->
      Sim.Stats.incr (stats ctx) "alloc_retry_reclaim";
      let trace = Physmem.Phys_mem.trace ctx.mem in
      let causal = Sim.Trace.causal trace in
      let core = Sim.Trace.current_core trace in
      let stall = Sim.Causal.emit causal ~core ~op:"alloc_stall" () in
      let got = Reclaim.scan r ~target_frames:8 in
      if got > 0 then Sim.Stats.add (stats ctx) "alloc_reclaimed_frames" got;
      (* Reclaimed frames land in the zero engine's dirty queue; launder
         enough of them for the retry to see clean memory. *)
      ignore (Physmem.Zero_engine.background_step ctx.zero ~budget_frames:(max 1 got));
      let wake = Sim.Causal.emit causal ~core ~op:"reclaim_wake" ~detail:(string_of_int got) () in
      Sim.Causal.link causal ~src:stall ~dst:wake ~kind:"reclaim";
      alloc ())

let oom ctx what =
  Sim.Stats.incr (stats ctx) "alloc_oom";
  Sim.Errno.fail Sim.Errno.ENOMEM what

let raw_frame_exn ?(what = "raw frame") ctx =
  match with_reclaim_retry ctx (fun () -> raw_frame ctx) with
  | Some pfn -> pfn
  | None -> oom ctx what

let fresh_zero_frame_once ctx =
  (* Prefer the pre-zeroed cache, then the engine's own pool (both O(1));
     fall back to allocate + eager zero. *)
  match Alloc.Zero_cache.take ctx.zcache ~order:0 with
  | Some pfn -> Some pfn
  | None -> (
    match Physmem.Zero_engine.take_zeroed ctx.zero with
    | Some pfn -> Some pfn
    | None -> (
      match buddy_alloc ctx ~order:0 with
      | Some pfn ->
        Physmem.Zero_engine.eager_zero ctx.zero pfn;
        Some pfn
      | None -> raw_frame ctx (* laundered on demand: already zero *)))

let fresh_zero_frame ctx =
  match with_reclaim_retry ctx (fun () -> fresh_zero_frame_once ctx) with
  | Some pfn -> pfn
  | None -> oom ctx "zero frame"

let install ctx aspace ~va ~pfn ~prot =
  Hw.Page_table.map_page (Address_space.page_table aspace)
    ~va:(Sim.Units.round_down va ~align:Sim.Units.page_size)
    ~pfn ~prot ~size:Hw.Page_size.Small;
  Page_meta.get_page ctx.meta pfn;
  Page_meta.inc_mapcount ctx.meta pfn;
  Page_meta.set_flag ctx.meta pfn Page_meta.Uptodate true;
  (* NUMA placement accounting: did the faulting core get a frame from
     its own domain? (Every install funnels through here.) *)
  if Physmem.Phys_mem.numa_nodes ctx.mem > 1 then
    Sim.Stats.incr (stats ctx)
      (if Physmem.Phys_mem.node_of_frame ctx.mem pfn = Physmem.Phys_mem.accessor_node ctx.mem
       then "numa_local_alloc"
       else "numa_remote_alloc")

let populate_anon_page ctx ~aspace ~va ~prot =
  let pfn = fresh_zero_frame ctx in
  Page_meta.set_flag ctx.meta pfn Page_meta.Swapbacked true;
  install ctx aspace ~va ~pfn ~prot

let file_frame_of (vma : Vma.t) ~va =
  match vma.Vma.backing with
  | Vma.Anon -> invalid_arg "Fault.file_frame_of: anonymous VMA"
  | Vma.File { fs; ino; _ } -> (
    let page = Vma.file_page_of_va vma ~va in
    let node = Fs.Memfs.inode fs ino in
    match Fs.Extent_tree.lookup (Fs.Inode.extents node) ~page with
    | Some pfn -> pfn
    | None -> raise (Segfault va) (* access beyond EOF *))

let populate_file_page ctx ~aspace ~(vma : Vma.t) ~va =
  let pfn = file_frame_of vma ~va in
  let prot =
    match vma.Vma.share with
    | Vma.Shared -> vma.Vma.prot
    | Vma.Private ->
      (* Map read-only so a later write takes a CoW fault. *)
      { vma.Vma.prot with Hw.Prot.write = false }
  in
  install ctx aspace ~va ~pfn ~prot

let cow ctx aspace ~va ~(old_leaf : Hw.Page_table.leaf) ~prot ~anon_backing =
  let table = Address_space.page_table aspace in
  let old_pfn = old_leaf.Hw.Page_table.pfn in
  (* No zeroing needed: the copy below overwrites the whole page. *)
  let pfn = raw_frame_exn ctx in
  (* Copy the old page's contents. *)
  let content =
    Physmem.Phys_mem.read ctx.mem ~addr:(Physmem.Frame.to_addr old_pfn) ~len:Sim.Units.page_size
  in
  Physmem.Phys_mem.write ctx.mem ~addr:(Physmem.Frame.to_addr pfn) (Bytes.to_string content);
  let page_va = Sim.Units.round_down va ~align:Sim.Units.page_size in
  Hw.Page_table.unmap_page table ~va:page_va;
  Page_meta.dec_mapcount ctx.meta old_pfn;
  Page_meta.put_page ctx.meta old_pfn;
  (* A CoW'd anonymous frame with no mappings left is dead: recycle it.
     File frames stay — the file system owns them. *)
  if anon_backing && Page_meta.mapcount ctx.meta old_pfn = 0 then
    Physmem.Zero_engine.put_dirty ctx.zero [ old_pfn ];
  Hw.Mmu.invalidate_page (Address_space.mmu aspace) ~va:page_va;
  install ctx aspace ~va:page_va ~pfn ~prot;
  Sim.Stats.incr (stats ctx) "cow_fault"

let handle_inner ctx ~aspace ~pid ~va ~write =
  Sim.Clock.charge (clock ctx) (model ctx).Sim.Cost_model.fault_trap;
  Sim.Stats.incr (stats ctx) "page_fault";
  match Address_space.find_vma aspace ~va with
  | None -> raise (Segfault va)
  | Some vma ->
    if not (Hw.Prot.allows vma.Vma.prot ~write ~exec:false) then raise (Segfault va);
    let table = Address_space.page_table aspace in
    let page_va = Sim.Units.round_down va ~align:Sim.Units.page_size in
    (match Hw.Page_table.lookup table ~va with
    | Some (_, leaf) ->
      (* Mapped but the access faulted: protection. Legal only as CoW. *)
      if
        write
        && (not leaf.Hw.Page_table.prot.Hw.Prot.write)
        && vma.Vma.prot.Hw.Prot.write
        && vma.Vma.share = Vma.Private
      then begin
        let anon_backing = vma.Vma.backing = Vma.Anon in
        cow ctx aspace ~va ~old_leaf:leaf ~prot:vma.Vma.prot ~anon_backing;
        Sim.Stats.incr (stats ctx) "minor_fault";
        Minor
      end
      else raise (Segfault va)
    | None -> (
      match vma.Vma.backing with
      | Vma.Anon ->
        if Swap.contains ctx.swap ~key:(pid, page_va) then begin
          (* Major fault: bring the page back from the device. *)
          let pfn = raw_frame_exn ctx in
          let ok = Swap.swap_in ctx.swap ~key:(pid, page_va) ~pfn in
          assert ok;
          Page_meta.set_flag ctx.meta pfn Page_meta.Swapbacked true;
          install ctx aspace ~va ~pfn ~prot:vma.Vma.prot;
          Sim.Stats.incr (stats ctx) "major_fault";
          Major
        end
        else begin
          populate_anon_page ctx ~aspace ~va ~prot:vma.Vma.prot;
          Sim.Stats.incr (stats ctx) "minor_fault";
          Minor
        end
      | Vma.File _ ->
        populate_file_page ctx ~aspace ~vma ~va;
        Sim.Stats.incr (stats ctx) "minor_fault";
        Minor))

let handle ctx ~aspace ~pid ~va ~write =
  let trace = Physmem.Phys_mem.trace ctx.mem in
  let start = Sim.Clock.now (clock ctx) in
  let result =
    Sim.Trace.prof_span trace "fault" @@ fun () ->
    match handle_inner ctx ~aspace ~pid ~va ~write with
    | kind ->
      Sim.Trace.record trace ~op:"fault_handle" ~start
        ~outcome:(match kind with Minor -> "minor" | Major -> "major")
        ();
      kind
    | exception Segfault va ->
      Sim.Trace.record trace ~op:"fault_handle" ~start ~outcome:"segfault" ();
      raise (Segfault va)
  in
  Sim.Stats.sample (stats ctx) ~now:(Sim.Clock.now (clock ctx));
  result
