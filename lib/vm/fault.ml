exception Segfault of int

type ctx = {
  mem : Physmem.Phys_mem.t;
  meta : Page_meta.t;
  buddy : Alloc.Buddy.t;
  swap : Swap.t;
  zero : Physmem.Zero_engine.t;
  zcache : Alloc.Zero_cache.t;
}

type kind = Minor | Major

let clock ctx = Physmem.Phys_mem.clock ctx.mem
let stats ctx = Physmem.Phys_mem.stats ctx.mem
let model ctx = Sim.Clock.model (clock ctx)

(* A frame with unspecified contents: buddy first; when the buddy is dry
   the memory may be sitting in the zero engine's dirty queue (frames
   freed but not yet laundered) — zero one on demand rather than OOM. *)
let raw_frame ctx =
  match Alloc.Buddy.alloc ctx.buddy ~order:0 with
  | Some pfn -> Some pfn
  | None ->
    if Physmem.Zero_engine.background_step ctx.zero ~budget_frames:1 = 1 then
      Physmem.Zero_engine.take_zeroed ctx.zero
    else None

let fresh_zero_frame ctx =
  (* Prefer the pre-zeroed cache, then the engine's own pool (both O(1));
     fall back to allocate + eager zero. *)
  match Alloc.Zero_cache.take ctx.zcache ~order:0 with
  | Some pfn -> pfn
  | None -> (
    match Physmem.Zero_engine.take_zeroed ctx.zero with
    | Some pfn -> pfn
    | None -> (
    match Alloc.Buddy.alloc ctx.buddy ~order:0 with
    | Some pfn ->
      Physmem.Zero_engine.eager_zero ctx.zero pfn;
      pfn
    | None -> (
      match raw_frame ctx with
      | Some pfn -> pfn (* laundered on demand: already zero *)
      | None -> failwith "OOM")))

let install ctx aspace ~va ~pfn ~prot =
  Hw.Page_table.map_page (Address_space.page_table aspace)
    ~va:(Sim.Units.round_down va ~align:Sim.Units.page_size)
    ~pfn ~prot ~size:Hw.Page_size.Small;
  Page_meta.get_page ctx.meta pfn;
  Page_meta.inc_mapcount ctx.meta pfn;
  Page_meta.set_flag ctx.meta pfn Page_meta.Uptodate true

let populate_anon_page ctx ~aspace ~va ~prot =
  let pfn = fresh_zero_frame ctx in
  Page_meta.set_flag ctx.meta pfn Page_meta.Swapbacked true;
  install ctx aspace ~va ~pfn ~prot

let file_frame_of (vma : Vma.t) ~va =
  match vma.Vma.backing with
  | Vma.Anon -> invalid_arg "Fault.file_frame_of: anonymous VMA"
  | Vma.File { fs; ino; _ } -> (
    let page = Vma.file_page_of_va vma ~va in
    let node = Fs.Memfs.inode fs ino in
    match Fs.Extent_tree.lookup (Fs.Inode.extents node) ~page with
    | Some pfn -> pfn
    | None -> raise (Segfault va) (* access beyond EOF *))

let populate_file_page ctx ~aspace ~(vma : Vma.t) ~va =
  let pfn = file_frame_of vma ~va in
  let prot =
    match vma.Vma.share with
    | Vma.Shared -> vma.Vma.prot
    | Vma.Private ->
      (* Map read-only so a later write takes a CoW fault. *)
      { vma.Vma.prot with Hw.Prot.write = false }
  in
  install ctx aspace ~va ~pfn ~prot

let cow ctx aspace ~va ~(old_leaf : Hw.Page_table.leaf) ~prot ~anon_backing =
  let table = Address_space.page_table aspace in
  let old_pfn = old_leaf.Hw.Page_table.pfn in
  (* No zeroing needed: the copy below overwrites the whole page. *)
  let pfn = match raw_frame ctx with Some pfn -> pfn | None -> failwith "OOM" in
  (* Copy the old page's contents. *)
  let content =
    Physmem.Phys_mem.read ctx.mem ~addr:(Physmem.Frame.to_addr old_pfn) ~len:Sim.Units.page_size
  in
  Physmem.Phys_mem.write ctx.mem ~addr:(Physmem.Frame.to_addr pfn) (Bytes.to_string content);
  let page_va = Sim.Units.round_down va ~align:Sim.Units.page_size in
  Hw.Page_table.unmap_page table ~va:page_va;
  Page_meta.dec_mapcount ctx.meta old_pfn;
  Page_meta.put_page ctx.meta old_pfn;
  (* A CoW'd anonymous frame with no mappings left is dead: recycle it.
     File frames stay — the file system owns them. *)
  if anon_backing && Page_meta.mapcount ctx.meta old_pfn = 0 then
    Physmem.Zero_engine.put_dirty ctx.zero [ old_pfn ];
  Hw.Tlb.invalidate_page (Hw.Mmu.tlb (Address_space.mmu aspace)) ~va:page_va;
  install ctx aspace ~va:page_va ~pfn ~prot;
  Sim.Stats.incr (stats ctx) "cow_fault"

let handle_inner ctx ~aspace ~pid ~va ~write =
  Sim.Clock.charge (clock ctx) (model ctx).Sim.Cost_model.fault_trap;
  Sim.Stats.incr (stats ctx) "page_fault";
  match Address_space.find_vma aspace ~va with
  | None -> raise (Segfault va)
  | Some vma ->
    if not (Hw.Prot.allows vma.Vma.prot ~write ~exec:false) then raise (Segfault va);
    let table = Address_space.page_table aspace in
    let page_va = Sim.Units.round_down va ~align:Sim.Units.page_size in
    (match Hw.Page_table.lookup table ~va with
    | Some (_, leaf) ->
      (* Mapped but the access faulted: protection. Legal only as CoW. *)
      if
        write
        && (not leaf.Hw.Page_table.prot.Hw.Prot.write)
        && vma.Vma.prot.Hw.Prot.write
        && vma.Vma.share = Vma.Private
      then begin
        let anon_backing = vma.Vma.backing = Vma.Anon in
        cow ctx aspace ~va ~old_leaf:leaf ~prot:vma.Vma.prot ~anon_backing;
        Sim.Stats.incr (stats ctx) "minor_fault";
        Minor
      end
      else raise (Segfault va)
    | None -> (
      match vma.Vma.backing with
      | Vma.Anon ->
        if Swap.contains ctx.swap ~key:(pid, page_va) then begin
          (* Major fault: bring the page back from the device. *)
          let pfn = match raw_frame ctx with Some pfn -> pfn | None -> failwith "OOM" in
          let ok = Swap.swap_in ctx.swap ~key:(pid, page_va) ~pfn in
          assert ok;
          Page_meta.set_flag ctx.meta pfn Page_meta.Swapbacked true;
          install ctx aspace ~va ~pfn ~prot:vma.Vma.prot;
          Sim.Stats.incr (stats ctx) "major_fault";
          Major
        end
        else begin
          populate_anon_page ctx ~aspace ~va ~prot:vma.Vma.prot;
          Sim.Stats.incr (stats ctx) "minor_fault";
          Minor
        end
      | Vma.File _ ->
        populate_file_page ctx ~aspace ~vma ~va;
        Sim.Stats.incr (stats ctx) "minor_fault";
        Minor))

let handle ctx ~aspace ~pid ~va ~write =
  let trace = Physmem.Phys_mem.trace ctx.mem in
  let start = Sim.Clock.now (clock ctx) in
  let result =
    Sim.Profile.span (Sim.Trace.profile trace) "fault" @@ fun () ->
    match handle_inner ctx ~aspace ~pid ~va ~write with
    | kind ->
      Sim.Trace.record trace ~op:"fault_handle" ~start
        ~outcome:(match kind with Minor -> "minor" | Major -> "major")
        ();
      kind
    | exception Segfault va ->
      Sim.Trace.record trace ~op:"fault_handle" ~start ~outcome:"segfault" ();
      raise (Segfault va)
  in
  Sim.Stats.sample (stats ctx) ~now:(Sim.Clock.now (clock ctx));
  result
