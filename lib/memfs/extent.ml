type t = { logical : int; start : Physmem.Frame.t; count : int }

let bytes e = e.count * Sim.Units.page_size
let logical_end e = e.logical + e.count

let frame_of_logical e page =
  if page >= e.logical && page < logical_end e then Some (e.start + (page - e.logical))
  else None

let mergeable a b = logical_end a = b.logical && a.start + a.count = b.start

let merge a b =
  assert (mergeable a b);
  { a with count = a.count + b.count }

let pp ppf e =
  Format.fprintf ppf "[log %d..%d -> pfn %#x, %d pages]" e.logical (logical_end e - 1) e.start
    e.count
