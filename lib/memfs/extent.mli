(** A file extent: a run of contiguous physical frames backing a run of
    contiguous logical file pages. The paper's key observation is that
    one such record can describe gigabytes, where page-granular systems
    need millions of PTE-like records. *)

type t = { logical : int; start : Physmem.Frame.t; count : int }
(** [logical] is the first file page covered; [start] the first physical
    frame; [count] the number of pages/frames. *)

val bytes : t -> int
val logical_end : t -> int
(** First file page after the extent. *)

val frame_of_logical : t -> int -> Physmem.Frame.t option
(** Physical frame backing a given file page, if this extent covers it. *)

val mergeable : t -> t -> bool
(** [mergeable a b]: [b] continues [a] both logically and physically. *)

val merge : t -> t -> t
(** Requires [mergeable a b]. *)

val pp : Format.formatter -> t -> unit
