type persistence = Volatile | Persistent

type kind = Regular of Extent_tree.t | Dir of (string, int) Hashtbl.t

type t = {
  ino : int;
  kind : kind;
  mutable size : int;
  mutable nlink : int;
  mutable refs : int;
  mutable prot : Hw.Prot.t;
  mutable persistence : persistence;
  mutable discardable : bool;
  mutable last_access : int;
}

let make_regular ~ino ~persistence =
  {
    ino;
    kind = Regular (Extent_tree.create ());
    size = 0;
    nlink = 1;
    refs = 0;
    prot = Hw.Prot.rw;
    persistence;
    discardable = false;
    last_access = 0;
  }

let make_dir ~ino =
  {
    ino;
    kind = Dir (Hashtbl.create 8);
    size = 0;
    nlink = 1;
    refs = 0;
    prot = Hw.Prot.rwx;
    persistence = Persistent;
    discardable = false;
    last_access = 0;
  }

let extents t =
  match t.kind with
  | Regular e -> e
  | Dir _ -> invalid_arg "Inode.extents: directory"

let dir_entries t =
  match t.kind with
  | Dir d -> d
  | Regular _ -> invalid_arg "Inode.dir_entries: regular file"

let is_dir t = match t.kind with Dir _ -> true | Regular _ -> false

let metadata_bytes t =
  128 + (match t.kind with Regular e -> Extent_tree.metadata_bytes e | Dir d -> 32 * Hashtbl.length d)
