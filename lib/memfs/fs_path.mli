(** Path parsing for the memory file system. Paths are absolute,
    '/'-separated; "." and empty segments are dropped; ".." is rejected
    (no need for it in the simulator, and it simplifies reasoning). *)

val split : string -> string list
(** [split "/a/b/c"] is [["a"; "b"; "c"]]; [split "/"] is [[]].
    Raises [Invalid_argument] on relative paths or ".." segments. *)

val dirname_basename : string -> string list * string
(** [dirname_basename "/a/b/c"] is [(["a"; "b"], "c")]. Raises
    [Invalid_argument] for the root path. *)

val valid_name : string -> bool
(** True for non-empty names without '/' or NUL. *)
