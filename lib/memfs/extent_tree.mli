(** Per-file extent map: logical page -> extent, ordered, coalescing on
    append (the Ext4/NTFS mechanism the paper points to). *)

type t

val create : unit -> t

val append : t -> start:Physmem.Frame.t -> count:int -> unit
(** Add [count] frames at the end of the file, merging with the last
    extent when physically contiguous. *)

val insert : t -> Extent.t -> unit
(** Insert an extent at its logical position. Raises [Invalid_argument]
    on overlap with an existing extent. *)

val truncate_to : t -> pages:int -> Extent.t list
(** Shrink the file to [pages] logical pages, returning the (possibly
    split) extents that were cut off, for the caller to free. *)

val lookup : t -> page:int -> Physmem.Frame.t option
(** Frame backing a logical page: one ordered-map search, independent of
    file size. *)

val find_extent : t -> page:int -> Extent.t option

val pages : t -> int
(** Total logical pages covered (files here are dense, so also the file
    length in pages). *)

val extent_count : t -> int
val to_list : t -> Extent.t list
(** Extents in logical order. *)

val iter : t -> (Extent.t -> unit) -> unit
val metadata_bytes : t -> int
(** 24 bytes per extent record. *)
