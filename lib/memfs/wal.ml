let marker = '\xC3'
let header_bytes = 12

type t = {
  nvm : Physmem.Nvm.t;
  base : int;
  capacity : int;
  mutable cursor : int; (* offset of the next record *)
  mutable records : string list; (* newest first *)
  mutable last_recovery : recovery_detail option;
}

and trunc =
  | Bad_header
  | Bad_marker
  | Bad_checksum

and recovery_detail = {
  valid_records : int;
  scanned_bytes : int;
  truncated : trunc option;
}

(* Adler-ish rolling checksum, 32 bits, never zero (zero means "blank"). *)
let checksum s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  let v = (!b lsl 16) lor !a in
  if v = 0 then 1 else v

let le32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Bytes.to_string b

(* Header: length, payload checksum, then a CRC over those 8 bytes. A torn
   or bit-flipped header fails its own CRC instead of being trusted as a
   length field pointing into garbage. *)
let header payload =
  let body = le32 (String.length payload) ^ le32 (checksum payload) in
  body ^ le32 (checksum body)

let record_span payload_len = header_bytes + payload_len + 1

let create ~nvm ~base ~capacity =
  let mem = Physmem.Nvm.mem nvm in
  if Physmem.Phys_mem.region_of_frame mem (Physmem.Frame.of_addr base) <> Physmem.Phys_mem.Nvm
  then invalid_arg "Wal.create: base not in the NVM region";
  if capacity < record_span 1 then invalid_arg "Wal.create: capacity too small";
  { nvm; base; capacity; cursor = 0; records = []; last_recovery = None }

type error = Wal_full

let append ?(durable = true) t payload =
  if payload = "" then invalid_arg "Wal.append: empty record";
  let span = record_span (String.length payload) in
  if t.cursor + span > t.capacity then Error Wal_full
  else begin
    let addr = t.base + t.cursor in
    (* 1. Header + payload — plus a blank header right after the record,
       durable BEFORE the commit marker. A reset only blanks the log's
       head, so stale records from before it survive further out; without
       the blank, a recovery scan that happens to land on one of their
       boundaries would replay pre-reset transactions as if they were
       the newest. With it, any scan that accepts this record stops. *)
    Physmem.Nvm.write_persistent t.nvm ~addr (header payload ^ payload);
    let blank_tail = t.cursor + span + header_bytes <= t.capacity in
    if blank_tail then
      Physmem.Nvm.write_persistent t.nvm ~addr:(addr + span) (String.make header_bytes '\000');
    if durable then begin
      let full_len = header_bytes + String.length payload in
      (* Injected buggy flush loop: only the first half of the record's
         bytes are flushed before the fence; a crash tears the rest. *)
      let flush_len =
        if
          Sim.Fault_inject.fires
            (Sim.Trace.faults (Physmem.Phys_mem.trace (Physmem.Nvm.mem t.nvm)))
            ~site:Sim.Fault_inject.site_wal_partial_flush
        then full_len / 2
        else full_len
      in
      if blank_tail then Physmem.Nvm.flush t.nvm ~addr:(addr + span) ~len:header_bytes;
      Physmem.Nvm.flush t.nvm ~addr ~len:flush_len;
      Physmem.Nvm.fence t.nvm
    end;
    (* 2. Commit marker, strictly after the payload is durable. *)
    let marker_addr = addr + header_bytes + String.length payload in
    Physmem.Nvm.write_persistent t.nvm ~addr:marker_addr (String.make 1 marker);
    if durable then begin
      Physmem.Nvm.flush t.nvm ~addr:marker_addr ~len:1;
      Physmem.Nvm.fence t.nvm
    end;
    t.cursor <- t.cursor + span;
    t.records <- payload :: t.records;
    Ok ()
  end

let append_exn ?durable t payload =
  match append ?durable t payload with
  | Ok () -> ()
  | Error Wal_full -> Sim.Errno.fail Sim.Errno.ENOSPC "Wal.append"

let entries t = List.rev t.records
let entry_count t = List.length t.records
let used_bytes t = t.cursor
let capacity t = t.capacity
let recovery_detail t = t.last_recovery

let recover_gen ~read ~nvm ~base ~capacity =
  let mem = Physmem.Nvm.mem nvm in
  let read ~addr ~len = Bytes.to_string (read mem ~addr ~len) in
  let read_le32 addr = Int32.to_int (Bytes.get_int32_le (Bytes.of_string (read ~addr ~len:4)) 0) land 0xFFFFFFFF in
  let t = { nvm; base; capacity; cursor = 0; records = []; last_recovery = None } in
  let stop = ref None in
  let rec scan off =
    if off + header_bytes + 1 > capacity then ()
    else begin
      let hdr = read ~addr:(base + off) ~len:header_bytes in
      if hdr = String.make header_bytes '\000' then ()
        (* blank header: clean end of log *)
      else begin
        let len = read_le32 (base + off) in
        let cksum = read_le32 (base + off + 4) in
        let hcrc = read_le32 (base + off + 8) in
        if
          hcrc <> checksum (String.sub hdr 0 8)
          || len <= 0 || cksum = 0
          || off + record_span len > capacity
        then stop := Some Bad_header
        else begin
          let payload = read ~addr:(base + off + header_bytes) ~len in
          let mark = (read ~addr:(base + off + header_bytes + len) ~len:1).[0] in
          if mark <> marker then stop := Some Bad_marker
          else if checksum payload <> cksum then stop := Some Bad_checksum
          else begin
            t.records <- payload :: t.records;
            t.cursor <- off + record_span len;
            scan (off + record_span len)
          end
        end
      end
    end
  in
  scan 0;
  t.last_recovery <-
    Some { valid_records = List.length t.records; scanned_bytes = t.cursor; truncated = !stop };
  t

let recover ~nvm ~base ~capacity = recover_gen ~read:Physmem.Phys_mem.read ~nvm ~base ~capacity

let recover_host ~nvm ~base ~capacity =
  recover_gen ~read:Physmem.Phys_mem.peek ~nvm ~base ~capacity

let reset t =
  (* Zero the first header durably: recovery then sees an empty log. *)
  Physmem.Nvm.write_persistent t.nvm ~addr:t.base (String.make header_bytes '\000');
  Physmem.Nvm.flush t.nvm ~addr:t.base ~len:header_bytes;
  Physmem.Nvm.fence t.nvm;
  t.cursor <- 0;
  t.records <- [];
  t.last_recovery <- None
