let marker = '\xC3'
let header_bytes = 8

type t = {
  nvm : Physmem.Nvm.t;
  base : int;
  capacity : int;
  mutable cursor : int; (* offset of the next record *)
  mutable records : string list; (* newest first *)
}

(* Adler-ish rolling checksum, 32 bits, never zero (zero means "blank"). *)
let checksum s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  let v = (!b lsl 16) lor !a in
  if v = 0 then 1 else v

let le32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Bytes.to_string b

let read_le32 mem addr =
  Int32.to_int (Bytes.get_int32_le (Physmem.Phys_mem.read mem ~addr ~len:4) 0) land 0xFFFFFFFF

let record_span payload_len = header_bytes + payload_len + 1

let create ~nvm ~base ~capacity =
  let mem = Physmem.Nvm.mem nvm in
  if Physmem.Phys_mem.region_of_frame mem (Physmem.Frame.of_addr base) <> Physmem.Phys_mem.Nvm
  then invalid_arg "Wal.create: base not in the NVM region";
  if capacity < record_span 1 then invalid_arg "Wal.create: capacity too small";
  { nvm; base; capacity; cursor = 0; records = [] }

type error = Wal_full

let append ?(durable = true) t payload =
  if payload = "" then invalid_arg "Wal.append: empty record";
  let span = record_span (String.length payload) in
  if t.cursor + span > t.capacity then Error Wal_full
  else begin
    let addr = t.base + t.cursor in
    (* 1. Header + payload. *)
    Physmem.Nvm.write_persistent t.nvm ~addr
      (le32 (String.length payload) ^ le32 (checksum payload) ^ payload);
    if durable then begin
      let full_len = header_bytes + String.length payload in
      (* Injected buggy flush loop: only the first half of the record's
         bytes are flushed before the fence; a crash tears the rest. *)
      let flush_len =
        if
          Sim.Fault_inject.fires
            (Sim.Trace.faults (Physmem.Phys_mem.trace (Physmem.Nvm.mem t.nvm)))
            ~site:Sim.Fault_inject.site_wal_partial_flush
        then full_len / 2
        else full_len
      in
      Physmem.Nvm.flush t.nvm ~addr ~len:flush_len;
      Physmem.Nvm.fence t.nvm
    end;
    (* 2. Commit marker, strictly after the payload is durable. *)
    let marker_addr = addr + header_bytes + String.length payload in
    Physmem.Nvm.write_persistent t.nvm ~addr:marker_addr (String.make 1 marker);
    if durable then begin
      Physmem.Nvm.flush t.nvm ~addr:marker_addr ~len:1;
      Physmem.Nvm.fence t.nvm
    end;
    t.cursor <- t.cursor + span;
    t.records <- payload :: t.records;
    Ok ()
  end

let append_exn ?durable t payload =
  match append ?durable t payload with
  | Ok () -> ()
  | Error Wal_full -> Sim.Errno.fail Sim.Errno.ENOSPC "Wal.append"

let entries t = List.rev t.records
let entry_count t = List.length t.records
let used_bytes t = t.cursor
let capacity t = t.capacity

let recover ~nvm ~base ~capacity =
  let mem = Physmem.Nvm.mem nvm in
  let t = { nvm; base; capacity; cursor = 0; records = [] } in
  let rec scan off =
    if off + header_bytes + 1 > capacity then ()
    else begin
      let len = read_le32 mem (base + off) in
      let cksum = read_le32 mem (base + off + 4) in
      if len <= 0 || cksum = 0 || off + record_span len > capacity then ()
      else begin
        let payload =
          Bytes.to_string (Physmem.Phys_mem.read mem ~addr:(base + off + header_bytes) ~len)
        in
        let mark =
          Physmem.Phys_mem.read_byte mem (base + off + header_bytes + len)
        in
        if mark = marker && checksum payload = cksum then begin
          t.records <- payload :: t.records;
          t.cursor <- off + record_span len;
          scan (off + record_span len)
        end
        (* else: torn tail — stop, keeping the valid prefix. *)
      end
    end
  in
  scan 0;
  t

let reset t =
  (* Zero the first header durably: recovery then sees an empty log. *)
  Physmem.Nvm.write_persistent t.nvm ~addr:t.base (String.make header_bytes '\000');
  Physmem.Nvm.flush t.nvm ~addr:t.base ~len:header_bytes;
  Physmem.Nvm.fence t.nvm;
  t.cursor <- 0;
  t.records <- []
