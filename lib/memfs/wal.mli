(** A crash-consistent write-ahead log on raw persistent memory.

    This is the mechanism behind every persistent-memory file system's
    metadata updates (PMFS journals exactly like this): records are made
    durable with the clwb/sfence discipline, a commit marker is written
    only after the payload is flushed, and recovery keeps the longest
    checksum-valid committed prefix — a torn tail (lines still in the
    cache hierarchy at power-fail) is detected and discarded.

    Record layout: 4-byte length, 4-byte payload checksum, 4-byte header
    CRC (over the first 8 bytes), payload, 1-byte commit marker. The
    header CRC means a torn or bit-flipped header is {e detected} — the
    length field is never trusted unless the header proves itself — so
    ["nvm_torn_line"] / ["nvm_bit_flip"] injections truncate replay at
    the first bad record instead of being silently applied. *)

type t

val create : nvm:Physmem.Nvm.t -> base:int -> capacity:int -> t
(** A fresh log over NVM bytes [base, base+capacity). [base] must lie in
    the NVM region. Existing bytes are ignored (use {!recover} to read a
    log back after a crash). *)

type error = Wal_full

val append : ?durable:bool -> t -> string -> (unit, error) result
(** Append one record. With [durable:true] (default) the payload is
    flushed and fenced before the commit marker, and the marker flushed
    after — the record is durable when [append] returns [Ok ()].
    [durable:false] skips every flush (a deliberately buggy fast path for
    crash tests). Returns [Error Wal_full] when out of space — the log is
    unchanged and the caller decides (checkpoint + {!reset}, or surface
    ENOSPC). The ["wal_partial_flush"] fault-injection site makes the
    payload flush cover only half the record's bytes. *)

val append_exn : ?durable:bool -> t -> string -> unit
(** {!append}, raising [Sim.Errno.Error (ENOSPC, _)] when full — for
    callers with no checkpoint story. *)

val entries : t -> string list
(** Committed records, oldest first. *)

val entry_count : t -> int
val used_bytes : t -> int
val capacity : t -> int

(** Why a recovery scan stopped before a blank header. *)
type trunc =
  | Bad_header  (** header CRC mismatch, or an insane length field *)
  | Bad_marker  (** payload present but the commit marker never landed *)
  | Bad_checksum  (** marker present but the payload bytes are damaged *)

type recovery_detail = {
  valid_records : int;  (** committed records kept by the scan *)
  scanned_bytes : int;  (** bytes of valid prefix (= cursor position) *)
  truncated : trunc option;
      (** [None]: the log ended cleanly at a blank header. [Some _]: a
          damaged record was detected and the tail discarded there. *)
}

val recover : nvm:Physmem.Nvm.t -> base:int -> capacity:int -> t
(** Rebuild the log from NVM contents after a crash: scans records from
    [base], stopping at the first header-CRC failure, missing marker, or
    payload-checksum mismatch, and positions the append cursor after the
    valid prefix. {!recovery_detail} reports what stopped the scan. *)

val recover_host : nvm:Physmem.Nvm.t -> base:int -> capacity:int -> t
(** Exactly {!recover}, but reading through {!Physmem.Phys_mem.peek}:
    no memory references are charged. Only for recovery bookkeeping
    whose real implementation would re-map rather than read the data —
    e.g. a persistent-index snapshot (the store's manifest), reachable
    after O(extents) mapping work. Never use for a log whose replay cost
    is part of the claim being measured. *)

val recovery_detail : t -> recovery_detail option
(** [Some _] on a log built by {!recover} (until {!reset}); [None] on a
    log built by {!create}. *)

val reset : t -> unit
(** Truncate the log (durably: the first header is zeroed and flushed). *)
