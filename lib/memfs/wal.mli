(** A crash-consistent write-ahead log on raw persistent memory.

    This is the mechanism behind every persistent-memory file system's
    metadata updates (PMFS journals exactly like this): records are made
    durable with the clwb/sfence discipline, a commit marker is written
    only after the payload is flushed, and recovery keeps the longest
    checksum-valid committed prefix — a torn tail (lines still in the
    cache hierarchy at power-fail) is detected and discarded.

    Record layout: 4-byte length, 4-byte checksum, payload, 1-byte
    commit marker. *)

type t

val create : nvm:Physmem.Nvm.t -> base:int -> capacity:int -> t
(** A fresh log over NVM bytes [base, base+capacity). [base] must lie in
    the NVM region. Existing bytes are ignored (use {!recover} to read a
    log back after a crash). *)

type error = Wal_full

val append : ?durable:bool -> t -> string -> (unit, error) result
(** Append one record. With [durable:true] (default) the payload is
    flushed and fenced before the commit marker, and the marker flushed
    after — the record is durable when [append] returns [Ok ()].
    [durable:false] skips every flush (a deliberately buggy fast path for
    crash tests). Returns [Error Wal_full] when out of space — the log is
    unchanged and the caller decides (checkpoint + {!reset}, or surface
    ENOSPC). The ["wal_partial_flush"] fault-injection site makes the
    payload flush cover only half the record's bytes. *)

val append_exn : ?durable:bool -> t -> string -> unit
(** {!append}, raising [Sim.Errno.Error (ENOSPC, _)] when full — for
    callers with no checkpoint story. *)

val entries : t -> string list
(** Committed records, oldest first. *)

val entry_count : t -> int
val used_bytes : t -> int
val capacity : t -> int

val recover : nvm:Physmem.Nvm.t -> base:int -> capacity:int -> t
(** Rebuild the log from NVM contents after a crash: scans records from
    [base], stopping at the first missing marker or checksum mismatch,
    and positions the append cursor after the valid prefix. *)

val reset : t -> unit
(** Truncate the log (durably: the first header is zeroed and flushed). *)
