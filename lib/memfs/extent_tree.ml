module IntMap = Map.Make (Int)

type t = { mutable by_logical : Extent.t IntMap.t; mutable pages : int }

let create () = { by_logical = IntMap.empty; pages = 0 }

let last t = IntMap.max_binding_opt t.by_logical

let append t ~start ~count =
  if count <= 0 then invalid_arg "Extent_tree.append: non-positive count";
  let logical = t.pages in
  let ext = { Extent.logical; start; count } in
  (match last t with
  | Some (k, prev) when Extent.mergeable prev ext ->
    t.by_logical <- IntMap.add k (Extent.merge prev ext) t.by_logical
  | _ -> t.by_logical <- IntMap.add logical ext t.by_logical);
  t.pages <- t.pages + count

let overlaps t (e : Extent.t) =
  let below = IntMap.find_last_opt (fun k -> k <= e.logical) t.by_logical in
  let above = IntMap.find_first_opt (fun k -> k > e.logical) t.by_logical in
  (match below with Some (_, b) -> Extent.logical_end b > e.logical | None -> false)
  || (match above with Some (_, a) -> Extent.logical_end e > a.Extent.logical | None -> false)

let insert t (e : Extent.t) =
  if e.count <= 0 then invalid_arg "Extent_tree.insert: empty extent";
  if overlaps t e then invalid_arg "Extent_tree.insert: overlapping extent";
  t.by_logical <- IntMap.add e.logical e t.by_logical;
  t.pages <- max t.pages (Extent.logical_end e)

let truncate_to t ~pages =
  if pages < 0 then invalid_arg "Extent_tree.truncate_to: negative size";
  (* Split at the cut point: only the boundary extent needs inspection,
     everything below [pages] is kept untouched. *)
  let keep, at, above = IntMap.split pages t.by_logical in
  let cut = match at with Some e -> e :: List.map snd (IntMap.bindings above)
                        | None -> List.map snd (IntMap.bindings above) in
  let keep, cut =
    match IntMap.max_binding_opt keep with
    | Some (k, (e : Extent.t)) when Extent.logical_end e > pages ->
      (* Straddling extent: head stays, tail is cut. *)
      let head_count = pages - e.logical in
      (IntMap.add k { e with count = head_count } keep,
       { Extent.logical = pages; start = e.start + head_count; count = e.count - head_count }
       :: cut)
    | _ -> (keep, cut)
  in
  t.by_logical <- keep;
  t.pages <- min t.pages pages;
  cut

let find_extent t ~page =
  match IntMap.find_last_opt (fun k -> k <= page) t.by_logical with
  | Some (_, e) when page < Extent.logical_end e -> Some e
  | _ -> None

let lookup t ~page =
  match find_extent t ~page with
  | Some e -> Extent.frame_of_logical e page
  | None -> None

let pages t = t.pages
let extent_count t = IntMap.cardinal t.by_logical
let to_list t = IntMap.bindings t.by_logical |> List.map snd
let iter t f = IntMap.iter (fun _ e -> f e) t.by_logical
let metadata_bytes t = 24 * IntMap.cardinal t.by_logical
