type t = { mutable used : int; mutable limit : int option }

let create ?limit_frames () = { used = 0; limit = limit_frames }
let set_limit t l = t.limit <- l

let try_charge t ~frames =
  assert (frames >= 0);
  match t.limit with
  | Some l when t.used + frames > l -> false
  | _ ->
    t.used <- t.used + frames;
    true

let release t ~frames =
  assert (frames >= 0 && frames <= t.used);
  t.used <- t.used - frames

let used t = t.used
let limit t = t.limit
