(** Inodes: the per-file metadata record.

    This is the paper's counterpoint to [struct page]: permissions,
    persistence, pinning and access tracking all live here, once per
    {e file}, not once per page. *)

type persistence = Volatile | Persistent
(** Whether the file survives crashes / restarts. The paper: files "can
    be marked at any time as volatile or persistent". *)

type kind =
  | Regular of Extent_tree.t
  | Dir of (string, int) Hashtbl.t  (** name -> ino *)

type t = {
  ino : int;
  kind : kind;
  mutable size : int;  (** bytes (Regular only) *)
  mutable nlink : int;
  mutable refs : int;  (** open/mmap references: whole-file refcounting *)
  mutable prot : Hw.Prot.t;  (** whole-file permission *)
  mutable persistence : persistence;
  mutable discardable : bool;  (** eligible for transcendent-memory reclaim *)
  mutable last_access : int;  (** clock cycles at last open/read/write *)
}

val make_regular : ino:int -> persistence:persistence -> t
val make_dir : ino:int -> t

val extents : t -> Extent_tree.t
(** Raises [Invalid_argument] on a directory. *)

val dir_entries : t -> (string, int) Hashtbl.t
(** Raises [Invalid_argument] on a regular file. *)

val is_dir : t -> bool

val metadata_bytes : t -> int
(** Fixed 128 B inode record plus its extent records. *)
