module Frame = Physmem.Frame
module Phys_mem = Physmem.Phys_mem

type mode = Tmpfs | Pmfs

type erase_policy = Eager_zero | Background_zero | Device_erase

type t = {
  mem : Phys_mem.t;
  mode : mode;
  space : Alloc.Bitmap_alloc.t;
  quota : Quota.t;
  inodes : (int, Inode.t) Hashtbl.t;
  mutable next_ino : int;
  root : int;
  zero : Physmem.Zero_engine.t;
  erase : erase_policy;
  journal : Wal.t option;
  mutable checkpoints : int;
}

let clock t = Phys_mem.clock t.mem
let stats t = Phys_mem.stats t.mem
let trace t = Phys_mem.trace t.mem
let model t = Sim.Clock.model (clock t)
let charge t c = Sim.Clock.charge (clock t) c

(* Frames reserved at the front of a PMFS region for its metadata
   journal. *)
let journal_frames = 16

let create ~mem ~first ~count ~mode ?quota_frames ?(erase = Eager_zero) () =
  (match mode with
  | Pmfs -> assert (Phys_mem.region_of_frame mem first = Physmem.Phys_mem.Nvm)
  | Tmpfs -> ());
  let journal, data_first, data_count =
    match mode with
    | Tmpfs -> (None, first, count)
    | Pmfs ->
      if count <= journal_frames then invalid_arg "Memfs.create: PMFS region too small";
      let nvm = Physmem.Nvm.create mem in
      let wal =
        Wal.create ~nvm
          ~base:(Frame.to_addr first)
          ~capacity:(journal_frames * Sim.Units.page_size)
      in
      (Some wal, first + journal_frames, count - journal_frames)
  in
  let t =
    {
      mem;
      mode;
      space = Alloc.Bitmap_alloc.create ~mem ~first:data_first ~count:data_count;
      quota = Quota.create ?limit_frames:quota_frames ();
      inodes = Hashtbl.create 64;
      next_ino = 1;
      root = 0;
      zero = Physmem.Zero_engine.create mem;
      erase;
      journal = None;
      checkpoints = 0;
    }
  in
  let t = { t with journal } in
  Hashtbl.replace t.inodes t.root (Inode.make_dir ~ino:t.root);
  t

(* Journal a metadata mutation. The journal is a bounded redo log: when
   it fills, the file system checkpoints (in a real PMFS, writing the
   full metadata image; here: a charge proportional to metadata size)
   and the log restarts. *)
let checkpoint t wal =
  (* Checkpoint: pay to rewrite the metadata image durably. *)
  let model = Sim.Clock.model (clock t) in
  let meta_bytes = Hashtbl.fold (fun _ n acc -> acc + Inode.metadata_bytes n) t.inodes 0 in
  Sim.Clock.charge (clock t)
    (Sim.Cost_model.copy_cost model ~bytes:meta_bytes
    + (meta_bytes / 64 * model.Sim.Cost_model.mem_ref_nvm_write));
  Wal.reset wal;
  t.checkpoints <- t.checkpoints + 1;
  Sim.Stats.incr (stats t) "fs_checkpoint"

let journal_op t record =
  match t.journal with
  | None -> ()
  | Some wal ->
    (match Wal.append wal record with
    | Ok () -> ()
    | Error Wal.Wal_full -> (
      checkpoint t wal;
      (* One retry against the emptied log: a record that still doesn't
         fit can never fit, so surface ENOSPC instead of looping. *)
      match Wal.append wal record with
      | Ok () -> ()
      | Error Wal.Wal_full -> Sim.Errno.fail Sim.Errno.ENOSPC "Memfs.journal_op: record exceeds WAL capacity"));
    Sim.Stats.set_gauge (stats t) "wal_bytes" (Wal.used_bytes wal)

let journal_records t = match t.journal with None -> [] | Some wal -> Wal.entries wal
let journal_checkpoints t = t.checkpoints

let erase_policy t = t.erase
let background_zero_step t ~budget_frames = Physmem.Zero_engine.background_step t.zero ~budget_frames
let zero_pool_available t = Physmem.Zero_engine.available t.zero

let mode t = t.mode
let mem t = t.mem

let inode t ino =
  match Hashtbl.find_opt t.inodes ino with Some i -> i | None -> raise Not_found

let charge_lookup t =
  charge t (model t).Sim.Cost_model.fs_lookup;
  Sim.Stats.incr (stats t) "fs_lookup"

(* Resolve a segment list to an inode, or None. *)
let resolve t segs =
  let rec loop ino = function
    | [] -> Some ino
    | seg :: rest -> (
      let node = inode t ino in
      if not (Inode.is_dir node) then None
      else
        match Hashtbl.find_opt (Inode.dir_entries node) seg with
        | Some child -> loop child rest
        | None -> None)
  in
  loop t.root segs

let lookup t path =
  charge_lookup t;
  resolve t (Fs_path.split path)

let resolve_dir_exn t segs ~what =
  match resolve t segs with
  | Some ino when Inode.is_dir (inode t ino) -> inode t ino
  | Some _ -> invalid_arg (what ^ ": parent is not a directory")
  | None -> invalid_arg (what ^ ": missing parent directory")

let mkdir t path =
  charge_lookup t;
  let dir_segs, name = Fs_path.dirname_basename path in
  if not (Fs_path.valid_name name) then invalid_arg "Memfs.mkdir: bad name";
  let parent = resolve_dir_exn t dir_segs ~what:"Memfs.mkdir" in
  let entries = Inode.dir_entries parent in
  if Hashtbl.mem entries name then invalid_arg "Memfs.mkdir: name exists";
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  Hashtbl.replace t.inodes ino (Inode.make_dir ~ino);
  Hashtbl.replace entries name ino

let create_file t path ~persistence =
  Sim.Trace.prof_span (trace t) "fs_create" @@ fun () ->
  let start = Sim.Clock.now (clock t) in
  charge_lookup t;
  let dir_segs, name = Fs_path.dirname_basename path in
  if not (Fs_path.valid_name name) then invalid_arg "Memfs.create_file: bad name";
  let parent = resolve_dir_exn t dir_segs ~what:"Memfs.create_file" in
  let entries = Inode.dir_entries parent in
  if Hashtbl.mem entries name then invalid_arg "Memfs.create_file: name exists";
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let node = Inode.make_regular ~ino ~persistence in
  node.Inode.last_access <- Sim.Clock.now (clock t);
  Hashtbl.replace t.inodes ino node;
  Hashtbl.replace entries name ino;
  journal_op t
    (Printf.sprintf "create %s %c" path
       (match persistence with Inode.Persistent -> 'P' | Inode.Volatile -> 'V'));
  Sim.Stats.incr (stats t) "fs_create";
  Sim.Trace.record (trace t) ~op:"fs_create" ~start ();
  ino

(* Returning frames: under Background_zero they enter the dirty queue so
   the zeroer can refill the handout pool; under Device_erase the extent
   is bulk-erased (constant time) and is immediately clean. *)
let release_extent t ~first ~count =
  Alloc.Bitmap_alloc.free_range t.space ~first ~count;
  Quota.release t.quota ~frames:count;
  match t.erase with
  | Eager_zero -> () (* zeroed lazily, at the next extend *)
  | Background_zero -> Physmem.Zero_engine.put_dirty t.zero (List.init count (fun i -> first + i))
  | Device_erase -> Physmem.Zero_engine.bulk_erase t.zero ~first ~count

let free_file_frames t node =
  let tree = Inode.extents node in
  Extent_tree.iter tree (fun e ->
      release_extent t ~first:e.Extent.start ~count:e.Extent.count);
  ignore (Extent_tree.truncate_to tree ~pages:0);
  node.Inode.size <- 0

let maybe_reap t node =
  if node.Inode.nlink = 0 && node.Inode.refs = 0 then begin
    if not (Inode.is_dir node) then free_file_frames t node;
    Hashtbl.remove t.inodes node.Inode.ino;
    Sim.Stats.incr (stats t) "fs_reap"
  end

let unlink t path =
  charge_lookup t;
  let dir_segs, name = Fs_path.dirname_basename path in
  let parent = resolve_dir_exn t dir_segs ~what:"Memfs.unlink" in
  let entries = Inode.dir_entries parent in
  match Hashtbl.find_opt entries name with
  | None -> invalid_arg "Memfs.unlink: no such entry"
  | Some ino ->
    let node = inode t ino in
    if Inode.is_dir node && Hashtbl.length (Inode.dir_entries node) > 0 then
      invalid_arg "Memfs.unlink: directory not empty";
    Hashtbl.remove entries name;
    node.Inode.nlink <- node.Inode.nlink - 1;
    journal_op t (Printf.sprintf "unlink %s" path);
    maybe_reap t node

let link t ~existing ~new_path =
  charge_lookup t;
  let ino =
    match lookup t existing with
    | Some ino -> ino
    | None -> invalid_arg "Memfs.link: no such file"
  in
  let node = inode t ino in
  if Inode.is_dir node then invalid_arg "Memfs.link: cannot link a directory";
  let dir_segs, name = Fs_path.dirname_basename new_path in
  if not (Fs_path.valid_name name) then invalid_arg "Memfs.link: bad name";
  let parent = resolve_dir_exn t dir_segs ~what:"Memfs.link" in
  let entries = Inode.dir_entries parent in
  if Hashtbl.mem entries name then invalid_arg "Memfs.link: name exists";
  Hashtbl.replace entries name ino;
  node.Inode.nlink <- node.Inode.nlink + 1;
  journal_op t (Printf.sprintf "link %s %s" existing new_path)

let rename t ~old_path ~new_path =
  charge_lookup t;
  let old_segs, old_name = Fs_path.dirname_basename old_path in
  let old_parent = resolve_dir_exn t old_segs ~what:"Memfs.rename" in
  let ino =
    match Hashtbl.find_opt (Inode.dir_entries old_parent) old_name with
    | Some ino -> ino
    | None -> invalid_arg "Memfs.rename: no such entry"
  in
  let new_segs, new_name = Fs_path.dirname_basename new_path in
  if not (Fs_path.valid_name new_name) then invalid_arg "Memfs.rename: bad name";
  let new_parent = resolve_dir_exn t new_segs ~what:"Memfs.rename" in
  let new_entries = Inode.dir_entries new_parent in
  if Hashtbl.mem new_entries new_name then invalid_arg "Memfs.rename: destination exists";
  Hashtbl.remove (Inode.dir_entries old_parent) old_name;
  Hashtbl.replace new_entries new_name ino;
  journal_op t (Printf.sprintf "rename %s %s" old_path new_path)

let readdir t path =
  charge_lookup t;
  match resolve t (Fs_path.split path) with
  | Some ino when Inode.is_dir (inode t ino) ->
    Hashtbl.fold (fun k _ acc -> k :: acc) (Inode.dir_entries (inode t ino)) []
    |> List.sort String.compare
  | Some _ -> invalid_arg "Memfs.readdir: not a directory"
  | None -> invalid_arg "Memfs.readdir: no such directory"

(* Allocate [pages] frames as few extents as possible: try the whole run,
   then halve. Returns extents newest-first. *)
let allocate_extents t pages =
  let rec loop remaining acc =
    if remaining = 0 then Some acc
    else
      (* Try the whole remaining run first, then halves: biggest first. *)
      let try_sizes =
        let rec sizes n acc = if n = 0 then acc else sizes (n / 2) (n :: acc) in
        List.rev (sizes remaining [])
      in
      let rec attempt = function
        | [] -> None
        | size :: rest -> (
          match Alloc.Bitmap_alloc.alloc_contig t.space ~count:size with
          | Some first -> Some (first, size)
          | None -> attempt rest)
      in
      match attempt try_sizes with
      | None ->
        (* Roll back partial allocation. *)
        List.iter
          (fun (first, size) -> Alloc.Bitmap_alloc.free_range t.space ~first ~count:size)
          acc;
        None
      | Some (first, size) -> loop (remaining - size) ((first, size) :: acc)
  in
  loop pages []

let extend t ino ~bytes_wanted =
  if bytes_wanted < 0 then invalid_arg "Memfs.extend: negative size";
  Sim.Trace.prof_span (trace t) "fs_extend" @@ fun () ->
  let start = Sim.Clock.now (clock t) in
  let node = inode t ino in
  let tree = Inode.extents node in
  let pages = Sim.Units.pages_of_bytes bytes_wanted in
  if pages > 0 then begin
    (* Injected quota refusal exercises the same ENOSPC path a genuinely
       full quota would. *)
    if
      Sim.Fault_inject.fires (Sim.Trace.faults (trace t)) ~site:Sim.Fault_inject.site_quota_enospc
      || not (Quota.try_charge t.quota ~frames:pages)
    then Sim.Errno.fail Sim.Errno.ENOSPC "Memfs.extend: quota";
    match allocate_extents t pages with
    | None ->
      Quota.release t.quota ~frames:pages;
      Sim.Errno.fail Sim.Errno.ENOSPC "Memfs.extend: no extents"
    | Some runs ->
      Sim.Stats.incr (stats t) "fs_extend";
      List.iter
        (fun (first, count) ->
          charge t (model t).Sim.Cost_model.fs_extent_op;
          match t.erase with
          | Eager_zero ->
            for pfn = first to first + count - 1 do
              Physmem.Zero_engine.eager_zero t.zero pfn
            done
          | Background_zero ->
            (* Frames from the pre-zeroed pool are clean already; any not
               covered by the pool must still be zeroed now. The pool is
               an overlay: we only count how many handouts it can cover. *)
            let covered = ref 0 in
            let rec drain n =
              if n > 0 then
                match Physmem.Zero_engine.take_zeroed t.zero with
                | Some _ -> (incr covered; drain (n - 1))
                | None -> ()
            in
            drain count;
            Sim.Stats.add (stats t) "zero_cache_hit" !covered;
            Sim.Stats.add (stats t) "zero_cache_miss" (count - !covered);
            for pfn = first to first + count - 1 - !covered do
              Physmem.Zero_engine.eager_zero t.zero pfn
            done;
            (* The covered tail is clean by construction; clear contents
               host-side with no charge (they were zeroed when pooled). *)
            for pfn = first + count - !covered to first + count - 1 do
              Phys_mem.discard_frame t.mem pfn
            done
          | Device_erase ->
            (* Freed extents were erased on the way out: nothing to do. *)
            ())
        (List.rev runs);
      List.iter (fun (first, count) -> Extent_tree.append tree ~start:first ~count) (List.rev runs);
      journal_op t (Printf.sprintf "extend %d %d" ino pages)
  end;
  node.Inode.size <- node.Inode.size + bytes_wanted;
  Sim.Trace.record (trace t) ~op:"fs_extend" ~start ~arg:bytes_wanted ()

let truncate t ino ~bytes =
  Sim.Trace.prof_span (trace t) "fs_truncate" @@ fun () ->
  let start = Sim.Clock.now (clock t) in
  let node = inode t ino in
  let tree = Inode.extents node in
  if bytes < node.Inode.size then begin
    let pages = Sim.Units.pages_of_bytes bytes in
    let cut = Extent_tree.truncate_to tree ~pages in
    List.iter
      (fun e ->
        charge t (model t).Sim.Cost_model.fs_extent_op;
        release_extent t ~first:e.Extent.start ~count:e.Extent.count)
      cut;
    journal_op t (Printf.sprintf "truncate %d %d" ino pages);
    node.Inode.size <- bytes;
    Sim.Trace.record (trace t) ~op:"fs_truncate" ~start ~arg:bytes ()
  end

let touch_access t node = node.Inode.last_access <- Sim.Clock.now (clock t)

(* Map a byte range of the file to (phys addr, run length) chunks. *)
let chunks_of t node ~off ~len =
  let tree = Inode.extents node in
  let rec loop off remaining acc =
    if remaining = 0 then List.rev acc
    else
      let page = off / Sim.Units.page_size in
      match Extent_tree.find_extent tree ~page with
      | None -> invalid_arg "Memfs: hole in file (corrupt state)"
      | Some e ->
        let in_extent_off = off - (e.Extent.logical * Sim.Units.page_size) in
        let extent_bytes = Extent.bytes e in
        let run = min remaining (extent_bytes - in_extent_off) in
        let pa = Frame.to_addr e.Extent.start + in_extent_off in
        charge t 60 (* per-extent resolution *);
        loop (off + run) (remaining - run) ((pa, run) :: acc)
  in
  ignore t;
  loop off len []

let write_file t ino ~off data =
  charge_lookup t;
  let node = inode t ino in
  if off < 0 then invalid_arg "Memfs.write_file: negative offset";
  let len = String.length data in
  let needed = off + len - node.Inode.size in
  if needed > 0 then extend t ino ~bytes_wanted:needed;
  touch_access t node;
  let rec copy chunks pos =
    match chunks with
    | [] -> ()
    | (pa, run) :: rest ->
      Phys_mem.write t.mem ~addr:pa (String.sub data pos run);
      copy rest (pos + run)
  in
  copy (chunks_of t node ~off ~len) 0

let read_file t ino ~off ~len =
  charge_lookup t;
  let node = inode t ino in
  if off < 0 || len < 0 then invalid_arg "Memfs.read_file: negative offset/length";
  touch_access t node;
  let len = max 0 (min len (node.Inode.size - off)) in
  let buf = Buffer.create len in
  List.iter
    (fun (pa, run) -> Buffer.add_bytes buf (Phys_mem.read t.mem ~addr:pa ~len:run))
    (chunks_of t node ~off ~len);
  Buffer.to_bytes buf

let file_extents t ino = Extent_tree.to_list (Inode.extents (inode t ino))

let open_file t ino =
  let node = inode t ino in
  node.Inode.refs <- node.Inode.refs + 1;
  touch_access t node

let close_file t ino =
  let node = inode t ino in
  if node.Inode.refs <= 0 then invalid_arg "Memfs.close_file: not open";
  node.Inode.refs <- node.Inode.refs - 1;
  maybe_reap t node

let set_prot t ino prot =
  charge t 50;
  (inode t ino).Inode.prot <- prot

let set_persistence t ino p =
  charge t 50;
  journal_op t
    (Printf.sprintf "persist %d %c" ino (match p with Inode.Persistent -> 'P' | Inode.Volatile -> 'V'));
  (inode t ino).Inode.persistence <- p

let set_discardable t ino d =
  charge t 50;
  (inode t ino).Inode.discardable <- d

(* Path of every regular file, for iteration and recovery. *)
let all_files t =
  let acc = ref [] in
  let rec walk ino prefix =
    let node = inode t ino in
    match node.Inode.kind with
    | Inode.Regular _ -> acc := (prefix, node) :: !acc
    | Inode.Dir entries ->
      Hashtbl.iter (fun name child -> walk child (prefix ^ "/" ^ name)) entries
  in
  walk t.root "";
  !acc

let iter_files t f = List.iter (fun (p, n) -> f p n) (all_files t)

let average_extents_per_file t =
  let files = ref 0 and extents = ref 0 in
  Hashtbl.iter
    (fun _ node ->
      match node.Inode.kind with
      | Inode.Regular tree when Extent_tree.pages tree > 0 ->
        incr files;
        extents := !extents + Extent_tree.extent_count tree
      | Inode.Regular _ | Inode.Dir _ -> ())
    t.inodes;
  if !files = 0 then 1.0 else float_of_int !extents /. float_of_int !files

let compact_file t node =
  let tree = Inode.extents node in
  let pages = Extent_tree.pages tree in
  match Alloc.Bitmap_alloc.alloc_contig t.space ~count:pages with
  | None -> false
  | Some dst ->
    if not (Quota.try_charge t.quota ~frames:pages) then begin
      Alloc.Bitmap_alloc.free_range t.space ~first:dst ~count:pages;
      false
    end
    else begin
      (* Copy page by page into the new run, then retire the old extents. *)
      let old_extents = Extent_tree.to_list tree in
      List.iter
        (fun (e : Extent.t) ->
          for i = 0 to e.Extent.count - 1 do
            let src_pa = Frame.to_addr (e.Extent.start + i) in
            let dst_pa = Frame.to_addr (dst + e.Extent.logical + i) in
            let content = Phys_mem.read t.mem ~addr:src_pa ~len:Sim.Units.page_size in
            Phys_mem.write t.mem ~addr:dst_pa (Bytes.to_string content)
          done)
        old_extents;
      ignore (Extent_tree.truncate_to tree ~pages:0);
      Extent_tree.append tree ~start:dst ~count:pages;
      List.iter
        (fun (e : Extent.t) -> release_extent t ~first:e.Extent.start ~count:e.Extent.count)
        old_extents;
      Sim.Stats.incr (stats t) "fs_compact";
      true
    end

let defragment t ?(max_files = max_int) () =
  let candidates = ref [] in
  Hashtbl.iter
    (fun _ node ->
      match node.Inode.kind with
      | Inode.Regular tree
        when Extent_tree.extent_count tree > 1 && node.Inode.refs = 0 && node.Inode.nlink > 0 ->
        candidates := node :: !candidates
      | Inode.Regular _ | Inode.Dir _ -> ())
    t.inodes;
  (* Worst-fragmented first. *)
  let sorted =
    List.sort
      (fun a b ->
        compare
          (Extent_tree.extent_count (Inode.extents b))
          (Extent_tree.extent_count (Inode.extents a)))
      !candidates
  in
  let moved = ref 0 in
  List.iteri
    (fun i node -> if i < max_files && compact_file t node then incr moved)
    sorted;
  !moved

let reclaim_discardable t ~target_bytes =
  let candidates =
    all_files t
    |> List.filter (fun (_, n) -> n.Inode.discardable && n.Inode.refs = 0)
    |> List.sort (fun (_, a) (_, b) -> compare a.Inode.last_access b.Inode.last_access)
  in
  let freed = ref 0 in
  List.iter
    (fun (path, node) ->
      if !freed < target_bytes then begin
        let sz = node.Inode.size in
        unlink t path;
        freed := !freed + sz;
        Sim.Stats.incr (stats t) "fs_discard"
      end)
    candidates;
  !freed

let crash t =
  match t.mode with
  | Pmfs ->
    (* Metadata is in NVM: survives. Data loss is modelled by Phys_mem /
       Nvm crash handling (volatile DRAM contents vanish there). *)
    ()
  | Tmpfs ->
    (* The whole FS was in DRAM: wipe the namespace. *)
    Hashtbl.reset t.inodes;
    Hashtbl.replace t.inodes t.root (Inode.make_dir ~ino:t.root);
    t.next_ino <- 1

let recover t =
  (match t.mode with Pmfs -> () | Tmpfs -> invalid_arg "Memfs.recover: tmpfs does not recover");
  let files = all_files t in
  let scanned = List.length files in
  List.iter
    (fun (path, node) ->
      charge t 200 (* per-file recovery scan work *);
      node.Inode.refs <- 0;
      match node.Inode.persistence with
      | Inode.Persistent -> ()
      | Inode.Volatile ->
        (* Volatile file in a persistent FS: erase in O(1) per extent. *)
        Extent_tree.iter (Inode.extents node) (fun e ->
            Physmem.Zero_engine.bulk_erase t.zero ~first:e.Extent.start ~count:e.Extent.count);
        unlink t path)
    files;
  Sim.Stats.add (stats t) "fs_recover_files" scanned;
  scanned

let total_bytes t = Alloc.Bitmap_alloc.total_frames t.space * Sim.Units.page_size
let free_bytes t = Alloc.Bitmap_alloc.free_frames t.space * Sim.Units.page_size
let used_bytes t = total_bytes t - free_bytes t
let quota_used_frames t = Quota.used t.quota

let data_pages t =
  Hashtbl.fold
    (fun _ node acc ->
      match node.Inode.kind with
      | Inode.Regular tree -> acc + Extent_tree.pages tree
      | Inode.Dir _ -> acc)
    t.inodes 0

let journal_bytes t = match t.journal with None -> 0 | Some wal -> Wal.used_bytes wal
let utilization t = Alloc.Bitmap_alloc.utilization t.space

let metadata_bytes t =
  Alloc.Bitmap_alloc.metadata_bytes t.space
  + Hashtbl.fold (fun _ n acc -> acc + Inode.metadata_bytes n) t.inodes 0

let file_count t =
  Hashtbl.fold (fun _ n acc -> if Inode.is_dir n then acc else acc + 1) t.inodes 0
