(** The memory file system: tmpfs / PMFS stand-in.

    An extent-based file system living entirely in (simulated) physical
    memory. Free space is a bitmap; files are extent lists; metadata is
    per-file. In [Pmfs] mode the file system is placed in NVM: its
    metadata and [Persistent] file contents survive {!crash}, while
    [Volatile] files are cleared during {!recover} — the paper's
    separation of memory management from persistence. *)

type mode = Tmpfs | Pmfs

type erase_policy =
  | Eager_zero  (** memset new frames at [extend] time — linear, baseline *)
  | Background_zero  (** serve pre-zeroed frames; zero freed frames off the critical path *)
  | Device_erase  (** constant-time bulk erase of freed extents *)

type t

val create :
  mem:Physmem.Phys_mem.t -> first:Physmem.Frame.t -> count:int -> mode:mode ->
  ?quota_frames:int -> ?erase:erase_policy -> unit -> t
(** Manage frames [first, first+count). In [Pmfs] mode the range should
    lie in the NVM region (asserted), and the first 16 frames host a
    metadata {!Wal}: every namespace/extent operation appends a journal
    record with the clwb/sfence discipline, so metadata updates carry
    their true durability cost and recovery is verifiable. [erase]
    (default [Eager_zero]) selects how the security-mandated zeroing of
    reused frames is paid for — the paper's §4.1 "constant-time erase"
    question. *)

val journal_records : t -> string list
(** The metadata journal's committed records ([Pmfs] only; empty for
    tmpfs). Each record is one line: "create PATH P|V", "extend INO
    PAGES", "truncate INO PAGES", "unlink PATH", "link PATH PATH",
    "rename PATH PATH", "persist INO P|V", "checkpoint". *)

val journal_checkpoints : t -> int
(** Times the journal filled and was checkpointed (compacted). *)

val erase_policy : t -> erase_policy

val background_zero_step : t -> budget_frames:int -> int
(** Let the background zeroer run (only meaningful under
    [Background_zero]); returns frames zeroed. Idle-loop work: call it
    off any measured critical path. *)

val zero_pool_available : t -> int
(** Pre-zeroed frames ready for O(1) handout. *)

val mode : t -> mode
val mem : t -> Physmem.Phys_mem.t

(** {1 Namespace} *)

val mkdir : t -> string -> unit
(** Create a directory; parents must exist. Raises [Invalid_argument] if
    the name exists. *)

val create_file : t -> string -> persistence:Inode.persistence -> int
(** Create an empty regular file and return its inode number. Charges one
    FS lookup. *)

val lookup : t -> string -> int option
(** Resolve a path to an inode number; charges one FS lookup. *)

val unlink : t -> string -> unit
(** Remove a name. The file's frames are freed once the link and
    reference counts reach zero. Raises [Invalid_argument] for missing
    paths or non-empty directories. *)

val link : t -> existing:string -> new_path:string -> unit
(** Hard link: a second name for the same inode (bumps [nlink]). Frames
    are freed only when every name and reference is gone. Directories
    cannot be linked. *)

val rename : t -> old_path:string -> new_path:string -> unit
(** Move a name (file or directory) to a new location; a metadata-only
    operation, O(1) regardless of file size. The destination must not
    exist. *)

val readdir : t -> string -> string list
(** Sorted entries of a directory. *)

val inode : t -> int -> Inode.t
(** Raises [Not_found] for a dead inode. *)

(** {1 File contents} *)

val extend : t -> int -> bytes_wanted:int -> unit
(** Grow a file by [bytes_wanted] (rounded up to whole pages). Allocates
    the fewest contiguous extents the free bitmap allows — one, in the
    common far-from-full case — and zeroes the new frames.
    Raises [Sim.Errno.Error (ENOSPC, _)] when space or quota is exhausted
    (or the ["quota_enospc"] fault-injection site fires); the file and
    quota are left unchanged. *)

val truncate : t -> int -> bytes:int -> unit
(** Shrink (or no-op if already smaller); freed frames return to the
    bitmap. *)

val write_file : t -> int -> off:int -> string -> unit
(** Write through the file API (extending as needed): one FS lookup plus
    per-extent address resolution plus the memory traffic. *)

val read_file : t -> int -> off:int -> len:int -> bytes
(** Read through the file API. Short reads at EOF return fewer bytes. *)

val file_extents : t -> int -> Extent.t list
(** The file's extents (for mapping it). *)

val open_file : t -> int -> unit
(** Bump the reference count and the coarse access time. *)

val close_file : t -> int -> unit
(** Drop a reference; frees the file if fully dead. *)

(** {1 Whole-file attributes} *)

val set_prot : t -> int -> Hw.Prot.t -> unit
(** One metadata write — permission is per file, never per page. *)

val set_persistence : t -> int -> Inode.persistence -> unit
val set_discardable : t -> int -> bool -> unit

val defragment : t -> ?max_files:int -> unit -> int
(** Compaction pass: files that are split across several extents and are
    not currently open or mapped ([refs] = 0) are relocated into a single
    contiguous run when the free bitmap has one, restoring the contiguity
    O(1) mapping depends on ("O(1) operation is only possible if most
    memory can be allocated contiguously"). Copies data at memory
    bandwidth. Returns the number of files compacted. *)

val average_extents_per_file : t -> float
(** Fragmentation indicator: extents per regular file (1.0 = perfect). *)

(** {1 Reclamation and persistence} *)

val reclaim_discardable : t -> target_bytes:int -> int
(** Delete the coldest unreferenced discardable files until
    [target_bytes] are freed (or none remain); returns bytes freed.
    O(files), not O(pages): transcendent-memory-style reclaim. *)

val crash : t -> unit
(** Machine crash. [Tmpfs]: the whole FS is lost (recreate it).
    [Pmfs]: metadata survives; call {!recover} before further use. *)

val recover : t -> int
(** Post-crash recovery ([Pmfs] only): open references are cleared and
    [Volatile] files are deleted (their frames bulk-erased). Returns the
    number of files scanned — the cost is O(files), not O(bytes). *)

(** {1 Introspection} *)

val total_bytes : t -> int
val used_bytes : t -> int
val free_bytes : t -> int
val utilization : t -> float
val metadata_bytes : t -> int
(** Bitmap + inodes + extent records. *)

val file_count : t -> int
val iter_files : t -> (string -> Inode.t -> unit) -> unit
(** Iterate (path, inode) over all regular files. *)

val quota_used_frames : t -> int
(** Frames the quota believes are charged. The invariant checker cross
    checks this against {!data_pages} and the space bitmap. *)

val data_pages : t -> int
(** Pages held by every inode's extent tree. *)

val journal_bytes : t -> int
(** Bytes used in the metadata WAL (0 without a journal) — the true level
    of the "wal_bytes" gauge. *)
