let valid_name s =
  String.length s > 0 && (not (String.contains s '/')) && not (String.contains s '\000')

let split path =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg "Fs_path.split: path must be absolute";
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> ".")
  |> List.map (fun s -> if s = ".." then invalid_arg "Fs_path.split: '..' not supported" else s)

let dirname_basename path =
  match List.rev (split path) with
  | [] -> invalid_arg "Fs_path.dirname_basename: root has no basename"
  | base :: rev_dir -> (List.rev rev_dir, base)
