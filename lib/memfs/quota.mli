(** Frame quotas — the file-system control the paper notes tmpfs already
    provides over memory allocation. *)

type t

val create : ?limit_frames:int -> unit -> t
(** No limit when [limit_frames] is omitted. *)

val set_limit : t -> int option -> unit

val try_charge : t -> frames:int -> bool
(** Reserve [frames]; [false] (and no change) if it would exceed the
    limit. *)

val release : t -> frames:int -> unit
val used : t -> int
val limit : t -> int option
