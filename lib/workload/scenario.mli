(** Multi-process macro workloads: several simulated applications
    time-share one machine under a round-robin scheduler, so whole-system
    effects (context switches, TLB flushes, competing allocations) show
    up — the level at which the paper's per-operation savings compound. *)

type op =
  | Compute of int  (** busy cycles not touching the memory system *)
  | Alloc of { slot : int; bytes : int }  (** allocate into a per-app slot *)
  | Touch of { slot : int; write : bool }  (** touch one byte per page of a slot *)
  | Free of int  (** free a slot *)

type app = { name : string; script : op list }

val desktop_mix : rng:Sim.Rng.t -> apps:int -> steps:int -> app list
(** A synthetic "desktop": each app interleaves compute bursts with
    allocations (log-uniform 16 KiB – 4 MiB), touches and frees. The mix
    is deterministic per seed. *)

type backend = Baseline | Fom

type result = {
  sim_us : float;  (** total simulated time to drain every script *)
  switches : int;
  faults : int;
  tlb_misses : int;
}

val run :
  Os.Kernel.t -> ?fom:O1mem.Fom.t -> backend:backend -> asids:bool -> quantum:int ->
  app list -> result
(** Execute every app to completion, round-robin with [quantum] ops per
    slice, charging a context switch between slices. [backend] selects
    how [Alloc]/[Touch]/[Free] are implemented: demand-paged anonymous
    mmap, or file-only memory (requires [fom]). *)
