(** Allocation-churn traces: a randomized sequence of variable-size
    allocations with bounded lifetimes, replayable against either heap
    (baseline malloc vs file-only memory) for the end-to-end and
    space-overhead experiments (E14/E15). *)

type op = Alloc of { id : int; bytes : int } | Touch of { id : int } | Free of { id : int }

val generate :
  rng:Sim.Rng.t -> ops:int -> ?min_bytes:int -> ?max_bytes:int -> ?mean_lifetime:int ->
  unit -> op list
(** A trace of [ops] operations. Sizes are log-uniform in
    [min_bytes, max_bytes] (defaults 64 B .. 4 MiB); each allocation is
    freed after an exponentially distributed number of subsequent
    operations (mean [mean_lifetime], default 50); every allocation is
    touched (one byte per page) once while live. All allocations are
    eventually freed. *)

val to_string : op list -> string
(** Serialize a trace, one op per line ("A id bytes" / "T id" / "F id"). *)

val of_string : string -> op list
(** Parse a serialized trace. Raises [Invalid_argument] on malformed
    input. *)

type heap_driver = {
  h_malloc : bytes:int -> int;
  h_free : int -> unit;
  h_touch : va:int -> bytes:int -> unit;
}

val run : op list -> heap_driver -> int
(** Replay a trace; returns the number of operations executed. *)
