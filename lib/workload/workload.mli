(** Workload generators shared by the benchmarks. *)

val size_sweep_kb : unit -> int list
(** The paper's file-size axis: 4 KB to 1024 KB in powers of two. *)

val page_sweep : unit -> int list
(** The PMFS report's page-count axis: 1, 2, 16, 64, 256, 1k, 4k, 16k. *)

type pattern = Sequential | One_byte_per_page | Random_pages of int | Zipf_pages of int
(** [Random_pages n] / [Zipf_pages n]: n single-byte accesses at
    uniformly / Zipf-distributed page offsets. *)

val offsets : rng:Sim.Rng.t -> pattern -> len:int -> int list
(** Byte offsets (relative to a region base) realising the pattern over a
    region of [len] bytes. *)

val touch_with :
  access:(va:int -> write:bool -> unit) -> base:int -> rng:Sim.Rng.t -> pattern ->
  len:int -> write:bool -> int
(** Drive any access function over the pattern; returns accesses made. *)
