type params = {
  machines : int;
  years : int;
  samples_per_year : int;
  initial_capacity_gb : float;
  annual_data_growth : float;
  replace_threshold : float;
}

let default_params =
  {
    machines = 500;
    years = 5;
    samples_per_year = 4;
    initial_capacity_gb = 256.0;
    annual_data_growth = 0.45;
    replace_threshold = 0.65;
  }

type result = {
  mean_utilization : float;
  median_utilization : float;
  fraction_below_half : float;
  samples : int;
}

type machine = { mutable capacity : float; mutable data : float }

let run ~rng p =
  let machines =
    Array.init p.machines (fun _ ->
        (* Fleets are heterogeneous: start each machine at a random point
           of its device's life. *)
        let capacity = p.initial_capacity_gb *. (1.0 +. Sim.Rng.float rng) in
        let data = capacity *. (0.1 +. (0.5 *. Sim.Rng.float rng)) in
        { capacity; data })
  in
  let samples = ref [] in
  let steps = p.years * p.samples_per_year in
  let growth_per_step = (1.0 +. p.annual_data_growth) ** (1.0 /. float_of_int p.samples_per_year) in
  for _ = 1 to steps do
    Array.iter
      (fun m ->
        (* Jittered growth: individual machines differ step to step. *)
        let jitter = 0.9 +. (0.2 *. Sim.Rng.float rng) in
        m.data <- m.data *. growth_per_step *. jitter;
        if m.data > m.capacity *. p.replace_threshold then
          (* Replace with a device ~2.5x larger (capacity per dollar grows
             faster than data), data carried over. *)
          m.capacity <- m.capacity *. 2.5;
        samples := (m.data /. m.capacity) :: !samples)
      machines
  done;
  let arr = Array.of_list !samples in
  Array.sort compare arr;
  let n = Array.length arr in
  let mean = Array.fold_left ( +. ) 0.0 arr /. float_of_int n in
  let median = arr.(n / 2) in
  let below = Array.fold_left (fun acc u -> if u < 0.5 then acc + 1 else acc) 0 arr in
  {
    mean_utilization = mean;
    median_utilization = median;
    fraction_below_half = float_of_int below /. float_of_int n;
    samples = n;
  }
