(** A synthetic re-creation of the Agrawal et al. five-year file-system
    study's headline number (paper §2): mean and median file-system
    utilization stay below 50% because capacity is bought ahead of
    demand. The model: a fleet of machines whose data volume grows at a
    steady annual rate; when a device fills past a replacement threshold
    it is swapped for one twice as large. Utilization sampled across the
    fleet shows the excess capacity the paper proposes to lend to
    volatile memory. *)

type params = {
  machines : int;
  years : int;
  samples_per_year : int;
  initial_capacity_gb : float;
  annual_data_growth : float;  (** e.g. 0.45 = +45%/year *)
  replace_threshold : float;  (** replace when utilization exceeds this *)
}

val default_params : params

type result = {
  mean_utilization : float;
  median_utilization : float;
  fraction_below_half : float;  (** samples with utilization < 50% *)
  samples : int;
}

val run : rng:Sim.Rng.t -> params -> result
