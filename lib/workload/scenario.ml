type op =
  | Compute of int
  | Alloc of { slot : int; bytes : int }
  | Touch of { slot : int; write : bool }
  | Free of int

type app = { name : string; script : op list }

let desktop_mix ~rng ~apps ~steps =
  List.init apps (fun a ->
      let live = Hashtbl.create 8 in
      let next_slot = ref 0 in
      let ops = ref [] in
      for _ = 1 to steps do
        match Sim.Rng.int rng 10 with
        | 0 | 1 | 2 | 3 ->
          (* compute burst, 5-50 us *)
          ops := Compute (Sim.Rng.int_in rng ~lo:10_000 ~hi:100_000) :: !ops
        | 4 | 5 ->
          let slot = !next_slot in
          incr next_slot;
          let lg = 14.0 +. (Sim.Rng.float rng *. 8.0) (* 16KiB..4MiB *) in
          let bytes = int_of_float (2.0 ** lg) in
          Hashtbl.replace live slot ();
          ops := Alloc { slot; bytes } :: !ops
        | 6 | 7 | 8 -> (
          let slots = Hashtbl.fold (fun s () acc -> s :: acc) live [] in
          match slots with
          | [] -> ops := Compute 5_000 :: !ops
          | _ ->
            let slot = List.nth slots (Sim.Rng.int rng (List.length slots)) in
            ops := Touch { slot; write = Sim.Rng.bool rng } :: !ops)
        | _ -> (
          let slots = Hashtbl.fold (fun s () acc -> s :: acc) live [] in
          match slots with
          | [] -> ops := Compute 5_000 :: !ops
          | _ ->
            let slot = List.nth slots (Sim.Rng.int rng (List.length slots)) in
            Hashtbl.remove live slot;
            ops := Free slot :: !ops)
      done;
      (* Drain leftovers so runs end clean. *)
      Hashtbl.iter (fun s () -> ops := Free s :: !ops) live;
      { name = Printf.sprintf "app%d" a; script = List.rev !ops })

type backend = Baseline | Fom

type result = { sim_us : float; switches : int; faults : int; tlb_misses : int }

type task = {
  proc : Os.Proc.t;
  mutable script : op list;
  slots : (int, [ `Anon of int * int | `Fom of O1mem.Fom.region ]) Hashtbl.t;
}

let step kernel fom backend task op =
  match op with
  | Compute c -> Sim.Clock.charge (Os.Kernel.clock kernel) c
  | Alloc { slot; bytes } -> (
    match backend with
    | Baseline ->
      let va = Os.Kernel.mmap_anon kernel task.proc ~len:bytes ~prot:Hw.Prot.rw ~populate:false in
      Hashtbl.replace task.slots slot (`Anon (va, Sim.Units.round_up bytes ~align:Sim.Units.page_size))
    | Fom ->
      let fom = Option.get fom in
      let r = O1mem.Fom.alloc fom task.proc ~len:bytes ~prot:Hw.Prot.rw () in
      Hashtbl.replace task.slots slot (`Fom r))
  | Touch { slot; write } -> (
    match Hashtbl.find_opt task.slots slot with
    | None -> ()
    | Some (`Anon (va, len)) ->
      ignore (Os.Kernel.access_range kernel task.proc ~va ~len ~write ~stride:Sim.Units.page_size)
    | Some (`Fom r) ->
      let fom = Option.get fom in
      ignore
        (O1mem.Fom.access_range fom task.proc ~va:r.O1mem.Fom.va ~len:r.O1mem.Fom.len ~write
           ~stride:Sim.Units.page_size))
  | Free slot -> (
    match Hashtbl.find_opt task.slots slot with
    | None -> ()
    | Some (`Anon (va, len)) ->
      Os.Kernel.munmap kernel task.proc ~va ~len;
      Hashtbl.remove task.slots slot
    | Some (`Fom r) ->
      let fom = Option.get fom in
      O1mem.Fom.free fom task.proc r;
      Hashtbl.remove task.slots slot)

let run kernel ?fom ~backend ~asids ~quantum (apps : app list) =
  if quantum <= 0 then invalid_arg "Scenario.run: quantum must be positive";
  (match (backend, fom) with
  | Fom, None -> invalid_arg "Scenario.run: FOM backend needs ~fom"
  | _ -> ());
  let clock = Os.Kernel.clock kernel in
  let stats = Os.Kernel.stats kernel in
  let start = Sim.Clock.now clock in
  let faults0 = Sim.Stats.get stats "page_fault" in
  let misses0 = Sim.Stats.get stats "tlb_miss" in
  let tasks =
    List.map
      (fun (a : app) ->
        {
          proc = Os.Kernel.create_process kernel ();
          script = a.script;
          slots = Hashtbl.create 8;
        })
      apps
  in
  let switches = ref 0 in
  let prev = ref None in
  let rec scheduler () =
    let progressed = ref false in
    List.iter
      (fun task ->
        if task.script <> [] then begin
          progressed := true;
          (match !prev with
          | Some last when last != task ->
            Os.Kernel.context_switch kernel ~from_:last.proc ~to_:task.proc ~asids;
            incr switches
          | _ -> ());
          prev := Some task;
          let n = ref 0 in
          while !n < quantum && task.script <> [] do
            (match task.script with
            | op :: rest ->
              task.script <- rest;
              step kernel fom backend task op
            | [] -> ());
            incr n
          done
        end)
      tasks;
    if !progressed then scheduler ()
  in
  scheduler ();
  (* Orderly teardown. *)
  List.iter
    (fun task ->
      Hashtbl.iter
        (fun _ slot ->
          match slot with
          | `Anon (va, len) -> Os.Kernel.munmap kernel task.proc ~va ~len
          | `Fom r -> O1mem.Fom.free (Option.get fom) task.proc r)
        task.slots;
      Os.Kernel.exit_process kernel task.proc)
    tasks;
  {
    sim_us = Sim.Clock.us clock (Sim.Clock.elapsed clock ~since:start);
    switches = !switches;
    faults = Sim.Stats.get stats "page_fault" - faults0;
    tlb_misses = Sim.Stats.get stats "tlb_miss" - misses0;
  }
