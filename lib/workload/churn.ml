type op = Alloc of { id : int; bytes : int } | Touch of { id : int } | Free of { id : int }

let generate ~rng ~ops ?(min_bytes = 64) ?(max_bytes = Sim.Units.mib 4) ?(mean_lifetime = 50) ()
    =
  let lg_min = log (float_of_int min_bytes) and lg_max = log (float_of_int max_bytes) in
  let ops_out = ref [] in
  let next_id = ref 0 in
  (* (deadline, id) pending frees, kept sorted by deadline. *)
  let pending = ref [] in
  let schedule_free step id =
    let life = 1 + int_of_float (Sim.Rng.exponential rng ~mean:(float_of_int mean_lifetime)) in
    pending := List.merge compare !pending [ (step + life, id) ]
  in
  let flush_due step =
    let due, rest = List.partition (fun (d, _) -> d <= step) !pending in
    pending := rest;
    List.iter (fun (_, id) -> ops_out := Free { id } :: !ops_out) due
  in
  for step = 0 to ops - 1 do
    flush_due step;
    let bytes =
      int_of_float (exp (lg_min +. (Sim.Rng.float rng *. (lg_max -. lg_min))))
    in
    let id = !next_id in
    incr next_id;
    ops_out := Alloc { id; bytes = max min_bytes bytes } :: !ops_out;
    ops_out := Touch { id } :: !ops_out;
    schedule_free step id
  done;
  (* Drain the stragglers. *)
  List.iter (fun (_, id) -> ops_out := Free { id } :: !ops_out) !pending;
  List.rev !ops_out

let to_string ops =
  let buf = Buffer.create 1024 in
  List.iter
    (fun op ->
      Buffer.add_string buf
        (match op with
        | Alloc { id; bytes } -> Printf.sprintf "A %d %d\n" id bytes
        | Touch { id } -> Printf.sprintf "T %d\n" id
        | Free { id } -> Printf.sprintf "F %d\n" id))
    ops;
  Buffer.contents buf

let of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map (fun line ->
         match String.split_on_char ' ' line with
         | [ "A"; id; bytes ] -> Alloc { id = int_of_string id; bytes = int_of_string bytes }
         | [ "T"; id ] -> Touch { id = int_of_string id }
         | [ "F"; id ] -> Free { id = int_of_string id }
         | _ -> invalid_arg ("Churn.of_string: bad line: " ^ line))

type heap_driver = {
  h_malloc : bytes:int -> int;
  h_free : int -> unit;
  h_touch : va:int -> bytes:int -> unit;
}

let run trace driver =
  let vas = Hashtbl.create 256 in
  let sizes = Hashtbl.create 256 in
  let n = ref 0 in
  List.iter
    (fun op ->
      incr n;
      match op with
      | Alloc { id; bytes } ->
        Hashtbl.replace vas id (driver.h_malloc ~bytes);
        Hashtbl.replace sizes id bytes
      | Touch { id } ->
        let va = Hashtbl.find vas id and bytes = Hashtbl.find sizes id in
        driver.h_touch ~va ~bytes
      | Free { id } ->
        driver.h_free (Hashtbl.find vas id);
        Hashtbl.remove vas id;
        Hashtbl.remove sizes id)
    trace;
  !n
