let size_sweep_kb () = [ 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]
let page_sweep () = [ 1; 2; 16; 64; 256; 1024; 4096; 16384 ]

type pattern = Sequential | One_byte_per_page | Random_pages of int | Zipf_pages of int

let offsets ~rng pattern ~len =
  let pages = max 1 (len / Sim.Units.page_size) in
  match pattern with
  | Sequential -> List.init (len / 64) (fun i -> i * 64)
  | One_byte_per_page -> List.init pages (fun i -> i * Sim.Units.page_size)
  | Random_pages n ->
    List.init n (fun _ -> Sim.Rng.int rng pages * Sim.Units.page_size)
  | Zipf_pages n ->
    List.init n (fun _ -> Sim.Rng.zipf rng ~n:pages ~theta:0.9 * Sim.Units.page_size)

let touch_with ~access ~base ~rng pattern ~len ~write =
  let offs = offsets ~rng pattern ~len in
  List.iter (fun off -> access ~va:(base + off) ~write) offs;
  List.length offs
